"""Wayback Machine analogue: historical crawl records for URLs (§4.5).

The paper queries the Internet Archive to decide whether a matched URL
was online *before* the corresponding image was posted on the forum
("Seen Before" in Table 5).  The archive is incomplete — a URL crawled
after a forum post may still have existed earlier — and the seen-before
measurement inherits that lower-bound caveat, which we reproduce by
archiving each URL only with a configurable coverage probability and a
crawl lag.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Dict, List, Optional, Union

import numpy as np

from .url import Url

__all__ = ["CrawlRecord", "WaybackArchive"]


@dataclass(frozen=True, slots=True)
class CrawlRecord:
    """One archived snapshot of a URL."""

    url: str
    crawl_date: datetime


class WaybackArchive:
    """Crawl-date store with coverage gaps.

    ``coverage`` is the probability that a published URL gets archived at
    all; ``max_lag_days`` bounds the delay between publication and the
    first snapshot.
    """

    def __init__(self, seed: int = 0, coverage: float = 0.7, max_lag_days: int = 400):
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be within [0, 1]")
        if max_lag_days < 0:
            raise ValueError("max_lag_days must be non-negative")
        self._rng = np.random.default_rng(seed)
        self.coverage = coverage
        self.max_lag_days = max_lag_days
        self._records: Dict[str, List[datetime]] = {}

    # ------------------------------------------------------------------
    def record(self, url: Union[Url, str], crawl_date: datetime) -> None:
        """Store an explicit snapshot (always succeeds)."""
        self._records.setdefault(str(url), []).append(crawl_date)

    def observe_publication(
        self, url: Union[Url, str], published_at: datetime
    ) -> Optional[datetime]:
        """Maybe archive a freshly published URL.

        Returns the snapshot date if the archive picked the URL up, else
        ``None``.  The lag distribution is right-skewed: most snapshots
        happen within weeks, a tail takes months.
        """
        if self._rng.random() >= self.coverage:
            return None
        lag_days = float(self._rng.exponential(self.max_lag_days / 8.0))
        lag_days = min(lag_days, float(self.max_lag_days))
        snapshot = published_at + timedelta(days=lag_days)
        self.record(url, snapshot)
        return snapshot

    # ------------------------------------------------------------------
    def snapshots(self, url: Union[Url, str]) -> List[datetime]:
        """All snapshot dates for a URL, sorted ascending."""
        return sorted(self._records.get(str(url), []))

    def earliest_snapshot(self, url: Union[Url, str]) -> Optional[datetime]:
        """First crawl date, or ``None`` when unarchived."""
        dates = self._records.get(str(url))
        return min(dates) if dates else None

    def seen_before(self, url: Union[Url, str], reference: datetime) -> bool:
        """True when the URL has a snapshot strictly before ``reference``.

        This is the Table 5 "Seen Before" predicate: absence of an early
        snapshot does *not* prove the content was not online earlier.
        """
        earliest = self.earliest_snapshot(url)
        return earliest is not None and earliest < reference

    @property
    def n_urls(self) -> int:
        return len(self._records)
