"""Checkpointed, resumable crawls.

A multi-day crawl of the kind the paper ran (§4.2) must survive being
killed: :class:`CrawlCheckpoint` is a JSON snapshot of crawl progress
that :meth:`repro.web.crawler.Crawler.crawl` writes as it goes and
consults on resume.

The snapshot records *outcomes*, not content: for every settled link —
keyed by a SHA-1 digest of the URL plus its occurrence index, so
duplicate links in the sequence stay distinct — it stores the final
:class:`~repro.web.internet.FetchStatus` and the attempt number that
settled it, alongside the running :class:`~repro.web.crawler.CrawlStats`,
the virtual clock, the retry-budget spend, circuit-breaker states, and
any attempt logs.  On resume the crawler skips the retry loop for
completed links and re-materializes their resources deterministically
(the real-world analogue: the files are already on disk), so a resumed
crawl is **byte-identical** to an uninterrupted one — transient faults
are a pure function of ``(url, attempt)``, never of crawl order.

Resume is idempotent: crawling an already-complete checkpoint again
replays the recorded outcomes without re-counting anything.

Durability contract (DESIGN.md §13): saves go through
:func:`repro.atomicio.atomic_write_text` — temp file + ``os.replace`` —
so a crash mid-save leaves the previous complete snapshot, never a torn
file.  A file that *is* torn some other way (truncation, bit rot,
partial copy) fails :meth:`CrawlCheckpoint.load` with a typed
:class:`CheckpointError`, never a half-loaded checkpoint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from ..atomicio import atomic_write_text
from ..store.errors import StoreCorruptionError

__all__ = ["CheckpointError", "CrawlCheckpoint", "link_key"]

_VERSION = 1


class CheckpointError(StoreCorruptionError, ValueError):
    """A checkpoint file is damaged or of an unsupported version.

    Subclasses :class:`~repro.store.errors.StoreCorruptionError` (it is
    a corrupt on-disk artifact — the same taxonomy every store boundary
    raises) and ``ValueError`` for backward compatibility with callers
    that guarded the old version check.
    """


def link_key(url: str, occurrence: int) -> str:
    """Stable digest identifying one link *occurrence* in a crawl sequence.

    >>> link_key("https://a.com/x", 0) != link_key("https://a.com/x", 1)
    True
    """
    digest = hashlib.sha1()
    digest.update(url.encode("utf-8"))
    digest.update(b"\x1f")
    digest.update(str(int(occurrence)).encode("ascii"))
    return digest.hexdigest()


@dataclass
class CrawlCheckpoint:
    """Mutable crawl progress, optionally persisted to a JSON file.

    Construct empty (``CrawlCheckpoint()``) for an in-memory checkpoint,
    or via :meth:`load` to read/initialize one backed by a file.
    """

    path: Optional[Path] = None
    #: link key → {"status": str, "attempt": int, "log": optional dict}.
    completed: Dict[str, dict] = field(default_factory=dict)
    #: Serialized :class:`~repro.web.crawler.CrawlStats` (or ``None``).
    stats: Optional[dict] = None
    #: Serialized :class:`~repro.web.retry.BreakerBoard` state.
    breakers: Optional[dict] = None
    #: Max per-domain virtual clock at last save, seconds (summary; the
    #: authoritative per-domain values live in :attr:`domain_clocks`).
    clock: float = 0.0
    #: Retries spent against the crawl's retry budget.
    budget_spent: int = 0
    #: Per-domain virtual clocks, seconds.  Domain-scoped so a crawl
    #: interrupted under any worker count resumes under any other —
    #: serial and sharded checkpoints share this wire format.  Older
    #: checkpoints without the field fall back to :attr:`clock` for
    #: every domain.
    domain_clocks: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> "CrawlCheckpoint":
        """Read a checkpoint from ``path``; a fresh one if it is missing.

        Raises :class:`CheckpointError` for anything that is not a
        complete well-formed snapshot — garbage or truncated JSON, an
        unsupported version, malformed fields.  A damaged checkpoint
        never half-loads into a crawl.
        """
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"{path}: checkpoint is not valid JSON (torn write or "
                f"corruption): {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise CheckpointError(
                f"{path}: checkpoint is not a JSON object"
            )
        version = data.get("version")
        if version != _VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} in {path}"
            )
        try:
            return cls(
                path=path,
                completed=dict(data.get("completed", {})),
                stats=data.get("stats"),
                breakers=data.get("breakers"),
                clock=float(data.get("clock", 0.0)),
                budget_spent=int(data.get("budget_spent", 0)),
                domain_clocks={
                    str(d): float(t)
                    for d, t in data.get("domain_clocks", {}).items()
                },
            )
        except (TypeError, ValueError, AttributeError) as exc:
            raise CheckpointError(
                f"{path}: checkpoint fields are malformed: {exc}"
            ) from exc

    def save(self, path: Optional[Union[str, Path]] = None) -> Optional[Path]:
        """Atomically write the snapshot; no-op for in-memory checkpoints.

        ``durable=False``: periodic mid-crawl saves happen every few
        links, so the contract here is atomicity (either the old or the
        new complete snapshot) rather than per-save fsync cost.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            return None
        payload = {
            "version": _VERSION,
            "completed": self.completed,
            "stats": self.stats,
            "breakers": self.breakers,
            "clock": self.clock,
            "budget_spent": self.budget_spent,
            "domain_clocks": self.domain_clocks,
        }
        return atomic_write_text(
            target, json.dumps(payload, sort_keys=True), durable=False
        )

    # ------------------------------------------------------------------
    def base_clock(self) -> float:
        """Starting clock for domains absent from :attr:`domain_clocks`.

        New-format checkpoints record every touched domain, so unseen
        domains start fresh at 0.0.  A legacy checkpoint (progress but
        no per-domain clocks) falls back to its scalar :attr:`clock` —
        the best available approximation of its old global-clock
        semantics.
        """
        if not self.domain_clocks and self.completed:
            return self.clock
        return 0.0

    def clock_for(self, domain: str) -> float:
        """The resumed virtual clock for ``domain``."""
        return self.domain_clocks.get(domain, self.base_clock())

    # ------------------------------------------------------------------
    def is_complete(self, key: str) -> bool:
        return key in self.completed

    def outcome(self, key: str) -> Optional[dict]:
        return self.completed.get(key)

    def mark(
        self, key: str, status: str, attempt: int, log: Optional[dict] = None
    ) -> None:
        """Record one settled link occurrence."""
        entry: dict = {"status": status, "attempt": int(attempt)}
        if log is not None:
            entry["log"] = log
        self.completed[key] = entry

    @property
    def n_completed(self) -> int:
        return len(self.completed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path is not None else "<memory>"
        return f"CrawlCheckpoint({where}, n_completed={self.n_completed})"
