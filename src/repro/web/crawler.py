"""The custom crawler of §4.2: fetch links, download images, unpack packs.

The crawler takes link records (URL plus the forum metadata the paper
annotates: post, author, date), fetches each against the simulated
internet, downloads image content, decompresses pack archives into
per-pack folders, and keeps the bookkeeping the measurements need —
per-status link counts, per-service tallies, and exact-content digests
for the deduplication step ("After removing duplicates … there were
53 948 unique files").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Tuple

from ..media.image import SyntheticImage
from ..media.pack import Pack
from .internet import FetchStatus, SimulatedInternet
from .url import Url

__all__ = [
    "CrawlResult",
    "CrawlStats",
    "CrawledImage",
    "Crawler",
    "LinkRecord",
    "content_digest",
]


def content_digest(image: SyntheticImage) -> str:
    """Exact-content digest of an image's pixels (for file deduplication)."""
    raster = image.pixels
    digest = hashlib.sha1()
    digest.update(str(raster.shape).encode("ascii"))
    digest.update(raster.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class LinkRecord:
    """A URL extracted from a forum post, with its provenance metadata."""

    url: Url
    thread_id: Optional[int] = None
    post_id: Optional[int] = None
    author_id: Optional[int] = None
    posted_at: Optional[datetime] = None
    #: ``"preview"`` (image-sharing link) or ``"pack"`` (cloud-storage link).
    link_kind: str = "preview"


@dataclass(frozen=True, slots=True)
class CrawledImage:
    """One downloaded image plus where it came from."""

    image: SyntheticImage
    digest: str
    link: LinkRecord
    #: Pack id when the image was extracted from a pack archive.
    pack_id: Optional[int] = None


@dataclass
class CrawlStats:
    """Link-level outcome counters."""

    n_links: int = 0
    by_status: Dict[FetchStatus, int] = field(default_factory=dict)
    by_domain: Dict[str, int] = field(default_factory=dict)

    def record(self, domain: str, status: FetchStatus) -> None:
        self.n_links += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        self.by_domain[domain] = self.by_domain.get(domain, 0) + 1

    def count(self, status: FetchStatus) -> int:
        return self.by_status.get(status, 0)

    @property
    def n_ok(self) -> int:
        return self.count(FetchStatus.OK)


@dataclass
class CrawlResult:
    """Everything a crawl produced."""

    preview_images: List[CrawledImage]
    pack_images: List[CrawledImage]
    packs: List[Pack]
    stats: CrawlStats

    @property
    def all_images(self) -> List[CrawledImage]:
        return self.preview_images + self.pack_images

    def unique_digests(self) -> Dict[str, CrawledImage]:
        """First-seen image per exact-content digest (the dedup step)."""
        unique: Dict[str, CrawledImage] = {}
        for crawled in self.all_images:
            unique.setdefault(crawled.digest, crawled)
        return unique

    @property
    def n_unique_files(self) -> int:
        return len(self.unique_digests())

    def duplicate_histogram(self) -> Dict[str, int]:
        """Occurrences per digest, for duplication analysis (§4.2)."""
        histogram: Dict[str, int] = {}
        for crawled in self.all_images:
            histogram[crawled.digest] = histogram.get(crawled.digest, 0) + 1
        return histogram


class Crawler:
    """Fetch link records against the simulated internet and download."""

    def __init__(self, internet: SimulatedInternet):
        self._internet = internet

    def crawl(self, links: Sequence[LinkRecord]) -> CrawlResult:
        """Crawl all links; OK images are downloaded, OK packs unpacked.

        Links behind registration walls are *not* downloaded (the paper
        declines to crawl Dropbox/Drive, §4.2); their status is recorded.
        """
        stats = CrawlStats()
        preview_images: List[CrawledImage] = []
        pack_images: List[CrawledImage] = []
        packs: List[Pack] = []
        seen_pack_ids: Dict[int, None] = {}

        for link in links:
            result = self._internet.fetch(link.url)
            stats.record(link.url.host, result.status)
            if not result.ok:
                continue
            resource = result.resource
            if isinstance(resource, SyntheticImage):
                preview_images.append(
                    CrawledImage(image=resource, digest=content_digest(resource), link=link)
                )
            elif isinstance(resource, Pack):
                if resource.pack_id not in seen_pack_ids:
                    seen_pack_ids[resource.pack_id] = None
                    packs.append(resource)
                for image in resource.images:
                    pack_images.append(
                        CrawledImage(
                            image=image,
                            digest=content_digest(image),
                            link=link,
                            pack_id=resource.pack_id,
                        )
                    )
            else:  # pragma: no cover - registry only holds these two types
                raise TypeError(f"unexpected resource type {type(resource).__name__}")

        return CrawlResult(
            preview_images=preview_images,
            pack_images=pack_images,
            packs=packs,
            stats=stats,
        )
