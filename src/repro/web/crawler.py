"""The custom crawler of §4.2: fetch links, download images, unpack packs.

The crawler takes link records (URL plus the forum metadata the paper
annotates: post, author, date), fetches each against the simulated
internet, downloads image content, decompresses pack archives into
per-pack folders, and keeps the bookkeeping the measurements need —
per-status link counts, per-service tallies, and exact-content digests
for the deduplication step ("After removing duplicates … there were
53 948 unique files").

Fault tolerance (the operational layer the paper's crawler needed
against the real internet) is built in:

* transient fetch outcomes (timeout / rate limit / 5xx, injected by
  :mod:`repro.web.faults`) are retried under a :class:`~repro.web.retry.
  RetryPolicy` — capped exponential backoff with full jitter, an optional
  global retry budget, and ``Retry-After`` honouring;
* each domain sits behind a :class:`~repro.web.retry.CircuitBreaker`;
  links to a domain whose breaker is open are recorded as
  ``SKIPPED_BREAKER_OPEN`` instead of being fetched;
* progress can be checkpointed to a :class:`~repro.web.checkpoint.
  CrawlCheckpoint`, and a resumed crawl is byte-identical to an
  uninterrupted one (fault draws and jitter are pure functions of
  ``(url, attempt)``, and breaker/clock/budget state rides along in the
  checkpoint).

The virtual clock is **domain-scoped**: each domain advances its own
clock by the attempt costs and backoff delays of *its* links, and
breaker cooldowns are measured against it.  Because retry state,
breakers and clocks are all per-domain, the resolution of a link
depends only on its domain's state and ``(url, attempt)`` — which is
what makes the sharded executor in :mod:`repro.web.parallel`
bit-identical to this serial loop for any worker count.

With no fault injector installed every fetch settles on its first
attempt and the crawler behaves exactly like the pre-fault version.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from datetime import datetime
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import threading

from ..chaos.sites import kill_point
from ..media.image import SyntheticImage
from ..media.pack import Pack
from ..media.validate import UnexpectedResourceError, rebuild_error, validate_raster
from ..obs.trace import NULL_TRACER
from .checkpoint import CrawlCheckpoint, link_key
from .faults import stable_uniform
from .internet import FetchStatus, SimulatedInternet
from .retry import BreakerBoard, BreakerState, RetryPolicy
from .url import Url

if TYPE_CHECKING:  # import cycle: repro.core.quarantine ← repro.web
    from ..core.quarantine import Quarantine, QuarantineRecord

__all__ = [
    "CrawlResult",
    "CrawlStats",
    "CrawledImage",
    "Crawler",
    "IngestMemo",
    "LinkAttempt",
    "LinkAttemptLog",
    "LinkOutcome",
    "LinkRecord",
    "ShardState",
    "content_digest",
]


#: Memo key: ``(url, pack_id, member_index)`` — one per ingested payload.
IngestKey = Tuple[str, Optional[int], Optional[int]]


class IngestMemo:
    """Persistent memo of per-payload ingest outcomes.

    The crawler's :meth:`Crawler._ingest` boundary renders each payload,
    validates it and digests its bytes — the dominant cost of a crawl.
    All three are pure functions of ``(url, pack_id, member_index)`` for
    a fixed world seed (payload corruption is injected per-URL by pure
    hashes, and validation messages at ingest use the URL as context),
    so a warm run can replay the recorded outcome: clean payloads get
    their digest back without touching pixels, poisoned ones re-admit a
    byte-identical quarantine record.

    Entries are ``key -> ("ok", digest)`` or ``key -> ("err",
    error_type, message)``.  Thread-safe: sharded crawls ingest from
    worker threads.
    """

    def __init__(self) -> None:
        self._outcomes: Dict[IngestKey, Tuple[str, ...]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._outcomes)

    def lookup(self, key: IngestKey) -> Optional[Tuple[str, ...]]:
        with self._lock:
            outcome = self._outcomes.get(key)
            if outcome is None:
                self.misses += 1
            else:
                self.hits += 1
            return outcome

    def record_ok(self, key: IngestKey, digest: str) -> None:
        with self._lock:
            self._outcomes[key] = ("ok", digest)

    def record_error(self, key: IngestKey, error: BaseException) -> None:
        with self._lock:
            self._outcomes[key] = ("err", type(error).__name__, str(error))

    # -- persistence ----------------------------------------------------
    def items(self) -> List[Tuple[IngestKey, Tuple[str, ...]]]:
        with self._lock:
            return list(self._outcomes.items())

    def preload(
        self, items: Iterable[Tuple[IngestKey, Tuple[str, ...]]]
    ) -> None:
        with self._lock:
            for key, outcome in items:
                self._outcomes[tuple(key)] = tuple(outcome)  # type: ignore[index]


def content_digest(image: SyntheticImage) -> str:
    """Exact-content digest of an image's pixels (for file deduplication).

    The digest covers shape **and dtype** alongside the raw bytes: two
    rasters whose buffers happen to coincide but whose dtypes differ
    (e.g. the same 12 bytes viewed as ``float32`` vs ``uint8`` rows) are
    different files and must not collide in the dedup step.
    """
    raster = image.pixels
    digest = hashlib.sha1()
    digest.update(str(raster.shape).encode("ascii"))
    digest.update(raster.dtype.str.encode("ascii"))
    digest.update(raster.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class LinkRecord:
    """A URL extracted from a forum post, with its provenance metadata."""

    url: Url
    thread_id: Optional[int] = None
    post_id: Optional[int] = None
    author_id: Optional[int] = None
    posted_at: Optional[datetime] = None
    #: ``"preview"`` (image-sharing link) or ``"pack"`` (cloud-storage link).
    link_kind: str = "preview"


@dataclass(frozen=True, slots=True)
class CrawledImage:
    """One downloaded image plus where it came from."""

    image: SyntheticImage
    digest: str
    link: LinkRecord
    #: Pack id when the image was extracted from a pack archive.
    pack_id: Optional[int] = None


@dataclass(frozen=True, slots=True)
class LinkAttempt:
    """One fetch attempt within a link's retry loop."""

    attempt: int
    status: FetchStatus
    #: Backoff slept after this attempt, seconds (0.0 if none followed).
    delay: float = 0.0


@dataclass
class LinkAttemptLog:
    """The attempt history of one link that needed the retry machinery.

    Logs are kept only for links whose resolution involved at least one
    transient event (a retry, a giveup, or a breaker skip), so fault-free
    crawls carry no per-link log overhead.
    """

    url: str
    attempts: List[LinkAttempt]
    final_status: FetchStatus
    gave_up: bool = False
    breaker_skipped: bool = False

    def to_dict(self) -> dict:
        return {
            "url": self.url,
            "attempts": [
                {"attempt": a.attempt, "status": a.status.value, "delay": a.delay}
                for a in self.attempts
            ],
            "final_status": self.final_status.value,
            "gave_up": self.gave_up,
            "breaker_skipped": self.breaker_skipped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LinkAttemptLog":
        return cls(
            url=data["url"],
            attempts=[
                LinkAttempt(
                    attempt=int(a["attempt"]),
                    status=FetchStatus(a["status"]),
                    delay=float(a["delay"]),
                )
                for a in data["attempts"]
            ],
            final_status=FetchStatus(data["final_status"]),
            gave_up=bool(data.get("gave_up", False)),
            breaker_skipped=bool(data.get("breaker_skipped", False)),
        )


@dataclass
class CrawlStats:
    """Link-level outcome counters.

    ``by_status``/``by_domain`` count each link once, under its *final*
    status; the retry-layer counters account for the transient events on
    the way there.  :meth:`merge` combines shard stats for future
    distributed crawls.
    """

    n_links: int = 0
    by_status: Dict[FetchStatus, int] = field(default_factory=dict)
    by_domain: Dict[str, int] = field(default_factory=dict)
    #: Retries performed (each is one extra fetch attempt).
    n_retries: int = 0
    #: Links abandoned with a transient status after exhausting retries.
    n_giveups: int = 0
    #: Links never fetched because their domain's breaker was open.
    n_breaker_skips: int = 0
    #: Transient fetch outcomes observed (before retry resolution).
    n_transient_faults: int = 0
    #: Redirector hops followed across all fetches (adversarial drift).
    n_redirect_hops: int = 0

    def record(self, domain: str, status: FetchStatus) -> None:
        self.n_links += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        self.by_domain[domain] = self.by_domain.get(domain, 0) + 1

    def count(self, status: FetchStatus) -> int:
        return self.by_status.get(status, 0)

    @property
    def n_ok(self) -> int:
        return self.count(FetchStatus.OK)

    # ------------------------------------------------------------------
    def merge(self, other: "CrawlStats") -> "CrawlStats":
        """A new :class:`CrawlStats` combining two shards' counters."""
        merged = CrawlStats(
            n_links=self.n_links + other.n_links,
            n_retries=self.n_retries + other.n_retries,
            n_giveups=self.n_giveups + other.n_giveups,
            n_breaker_skips=self.n_breaker_skips + other.n_breaker_skips,
            n_transient_faults=self.n_transient_faults + other.n_transient_faults,
            n_redirect_hops=self.n_redirect_hops + other.n_redirect_hops,
        )
        for source in (self.by_status, other.by_status):
            for status, count in source.items():
                merged.by_status[status] = merged.by_status.get(status, 0) + count
        for source in (self.by_domain, other.by_domain):
            for domain, count in source.items():
                merged.by_domain[domain] = merged.by_domain.get(domain, 0) + count
        return merged

    # -- checkpoint serialization --------------------------------------
    def to_dict(self) -> dict:
        return {
            "n_links": self.n_links,
            "by_status": {s.value: c for s, c in self.by_status.items()},
            "by_domain": dict(self.by_domain),
            "n_retries": self.n_retries,
            "n_giveups": self.n_giveups,
            "n_breaker_skips": self.n_breaker_skips,
            "n_transient_faults": self.n_transient_faults,
            "n_redirect_hops": self.n_redirect_hops,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CrawlStats":
        return cls(
            n_links=int(data["n_links"]),
            by_status={FetchStatus(s): int(c) for s, c in data["by_status"].items()},
            by_domain={d: int(c) for d, c in data["by_domain"].items()},
            n_retries=int(data.get("n_retries", 0)),
            n_giveups=int(data.get("n_giveups", 0)),
            n_breaker_skips=int(data.get("n_breaker_skips", 0)),
            n_transient_faults=int(data.get("n_transient_faults", 0)),
            n_redirect_hops=int(data.get("n_redirect_hops", 0)),
        )

    def as_dict(self) -> dict:
        """Snapshot-protocol view (telemetry / manifest use).

        Unlike :meth:`to_dict` (the checkpoint wire format, round-
        tripped by :meth:`from_dict`) this adds the derived ``n_ok``
        and sorts the label maps for stable JSON output.
        """
        return {
            "n_links": self.n_links,
            "n_ok": self.n_ok,
            "by_status": dict(
                sorted((s.value, c) for s, c in self.by_status.items())
            ),
            "by_domain": dict(sorted(self.by_domain.items())),
            "n_retries": self.n_retries,
            "n_giveups": self.n_giveups,
            "n_breaker_skips": self.n_breaker_skips,
            "n_transient_faults": self.n_transient_faults,
            "n_redirect_hops": self.n_redirect_hops,
        }


@dataclass
class ShardState:
    """Mutable crawl state for one shard (or a whole serial crawl).

    Everything a link's resolution can read or write lives here: the
    outcome counters, the per-domain circuit breakers, the per-domain
    virtual clocks, and the running retry-budget spend.  A serial crawl
    owns one :class:`ShardState` covering every domain; the sharded
    executor gives each lane its own, restricted to the lane's domain,
    and merges them afterwards.
    """

    stats: CrawlStats = field(default_factory=CrawlStats)
    breakers: BreakerBoard = field(default_factory=BreakerBoard)
    #: Per-domain virtual clocks, seconds (created at ``base_clock``).
    clocks: Dict[str, float] = field(default_factory=dict)
    budget_spent: int = 0
    #: Starting clock for domains without an entry in :attr:`clocks`
    #: (non-zero only when resuming a legacy global-clock checkpoint).
    base_clock: float = 0.0

    def clock_for(self, domain: str) -> float:
        return self.clocks.get(domain, self.base_clock)


@dataclass
class LinkOutcome:
    """Everything one resolved link occurrence contributed to a crawl.

    The unit of the deterministic merge: the sharded executor collects
    lane outcomes and reassembles them in ``index`` order, reproducing
    the serial crawl's accumulator contents exactly.
    """

    #: Global position of the link in the crawl's link sequence.
    index: int
    domain: str
    final_status: FetchStatus
    #: True when the outcome was replayed from a checkpoint (stats for
    #: it are already counted in the checkpointed :class:`CrawlStats`).
    replayed: bool
    preview_images: List[CrawledImage] = field(default_factory=list)
    pack_images: List[CrawledImage] = field(default_factory=list)
    #: Packs first claimed at this link (deduplicated within the
    #: resolving shard; the merge re-deduplicates globally).
    packs: List[Pack] = field(default_factory=list)
    log: Optional[LinkAttemptLog] = None
    #: Ledger records admitted while ingesting this link's payloads.
    quarantined: List["QuarantineRecord"] = field(default_factory=list)
    #: Checkpoint key for this occurrence ("" when not checkpointing).
    key: str = ""
    #: Newly settled checkpoint entry (``None`` for replays or when not
    #: checkpointing) — the caller owns writing it into the checkpoint.
    entry: Optional[dict] = None


@dataclass
class CrawlResult:
    """Everything a crawl produced."""

    preview_images: List[CrawledImage]
    pack_images: List[CrawledImage]
    packs: List[Pack]
    stats: CrawlStats
    #: Attempt histories for links that needed the retry machinery.
    attempt_logs: List[LinkAttemptLog] = field(default_factory=list)
    #: Records excised at the ingest boundary (corrupt payloads,
    #: unexpected resources) during *this* crawl.
    quarantined: List["QuarantineRecord"] = field(default_factory=list)
    #: Aggregate circuit-breaker summary at crawl end (see
    #: :meth:`~repro.web.retry.BreakerBoard.as_dict`); telemetry only,
    #: deliberately excluded from :meth:`digest`.
    breaker_summary: Optional[dict] = None

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantined)

    @property
    def all_images(self) -> List[CrawledImage]:
        return self.preview_images + self.pack_images

    def unique_digests(self) -> Dict[str, CrawledImage]:
        """First-seen image per exact-content digest (the dedup step)."""
        unique: Dict[str, CrawledImage] = {}
        for crawled in self.all_images:
            unique.setdefault(crawled.digest, crawled)
        return unique

    @property
    def n_unique_files(self) -> int:
        return len(self.unique_digests())

    def duplicate_histogram(self) -> Dict[str, int]:
        """Occurrences per digest, for duplication analysis (§4.2)."""
        histogram: Dict[str, int] = {}
        for crawled in self.all_images:
            histogram[crawled.digest] = histogram.get(crawled.digest, 0) + 1
        return histogram

    def digest(self) -> str:
        """Order-sensitive digest of everything measurable in the result.

        Covers the content digests (in crawl order), pack ids, and the
        full stats — the equality contract a resumed crawl must meet.
        """
        h = hashlib.sha1()
        for crawled in self.preview_images:
            h.update(crawled.digest.encode("ascii"))
        h.update(b"|")
        for crawled in self.pack_images:
            h.update(crawled.digest.encode("ascii"))
        h.update(b"|")
        for pack in self.packs:
            h.update(str(pack.pack_id).encode("ascii"))
            h.update(b",")
        h.update(b"|")
        h.update(repr(sorted((s.value, c) for s, c in self.stats.by_status.items())).encode())
        h.update(repr(sorted(self.stats.by_domain.items())).encode())
        h.update(
            repr(
                (
                    self.stats.n_links,
                    self.stats.n_retries,
                    self.stats.n_giveups,
                    self.stats.n_breaker_skips,
                    self.stats.n_transient_faults,
                )
            ).encode()
        )
        h.update(b"|")
        for record in self.quarantined:
            h.update(record.ref.encode("utf-8"))
            h.update(b":")
            h.update(record.error_type.encode("ascii"))
            h.update(b",")
        return h.hexdigest()


class Crawler:
    """Fetch link records against the simulated internet and download.

    ``retry_policy`` governs the transient-failure discipline (defaults
    apply even without faults — they are simply never exercised then);
    ``breaker_threshold``/``breaker_cooldown`` configure the per-domain
    circuit breakers.

    ``validate_payloads`` applies :func:`~repro.media.validate.
    validate_raster` to every downloaded raster at the ingest boundary;
    payloads failing the contract are excised into the quarantine ledger
    instead of entering the measurement.  Disable it only to measure the
    validation overhead itself (``benchmarks/bench_r3_quarantine.py``).
    """

    def __init__(
        self,
        internet: SimulatedInternet,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 60.0,
        jitter_seed: int = 0,
        validate_payloads: bool = True,
        ingest_memo: Optional[IngestMemo] = None,
    ):
        self._internet = internet
        self._policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._jitter_seed = jitter_seed
        self._validate_payloads = validate_payloads
        #: Optional persistent memo of per-payload ingest outcomes; a
        #: hit skips the render/validate/digest work (see IngestMemo).
        self._ingest_memo = ingest_memo

    # ------------------------------------------------------------------
    def crawl(
        self,
        links: Sequence[LinkRecord],
        checkpoint: Optional[Union[str, "CrawlCheckpoint"]] = None,
        checkpoint_every: int = 16,
        quarantine: Optional["Quarantine"] = None,
        stage: str = "url_crawl",
        tracer=None,
        workers: Optional[int] = None,
        on_lane=None,
        metrics=None,
        executor: Optional[str] = None,
        stream_capacity: Optional[int] = None,
    ) -> CrawlResult:
        """Crawl all links; OK images are downloaded, OK packs unpacked.

        Links behind registration walls are *not* downloaded (the paper
        declines to crawl Dropbox/Drive, §4.2); their status is recorded.

        ``checkpoint`` may be a path (loaded if present, written as the
        crawl progresses) or a :class:`CrawlCheckpoint` instance.  Link
        occurrences already settled in the checkpoint are not re-fetched:
        their outcome is replayed and, for OK links, their content is
        re-materialized deterministically.  The result of a resumed crawl
        is byte-identical (see :meth:`CrawlResult.digest`) to an
        uninterrupted one — including the quarantine ledger, because
        payload corruption is a pure function of the URL.

        ``quarantine`` is the ledger poison records are excised into
        (admitted under ``stage``); when ``None`` a private ledger is
        created so a bad payload can never abort the crawl loop.  The
        records admitted by *this* crawl surface as
        :attr:`CrawlResult.quarantined` either way.

        ``tracer`` (a :class:`~repro.obs.trace.Tracer`-shaped recorder,
        default no-op) receives one ``crawl.fetch`` span per fetched
        link — attributed with domain, link kind, final status and
        attempt count, carrying the retry/backoff/breaker events of its
        resolution — plus ``crawl.replay`` events for links settled from
        the checkpoint.

        ``workers`` switches to the sharded parallel executor
        (:func:`repro.web.parallel.crawl_sharded`): links are
        partitioned into per-domain lanes run on a thread pool and
        merged in canonical order, producing a result — and a
        checkpoint — **bit-identical** to this serial loop for any
        worker count.  ``on_lane`` (parallel mode only) streams each
        finished lane's result, in deterministic lane order, into a
        downstream consumer before the whole crawl finishes.

        ``executor`` selects the parallel substrate: ``"thread"`` (the
        default) runs lanes on a thread pool, ``"process"`` on forked
        worker processes with a shared-memory raster arena
        (:func:`repro.web.procpool.crawl_procpool`) — bit-identical
        either way, and checkpoints written under one executor resume
        under the other.  ``stream_capacity`` bounds the
        completed-but-unstreamed lane backlog in both parallel modes
        (default ``max(2, workers)``).
        """
        if executor not in (None, "thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r} (one of 'thread', 'process')"
            )
        if workers is not None:
            common = dict(
                workers=workers,
                checkpoint=checkpoint,
                checkpoint_every=checkpoint_every,
                quarantine=quarantine,
                stage=stage,
                tracer=tracer,
                on_lane=on_lane,
                metrics=metrics,
                stream_capacity=stream_capacity,
            )
            if executor == "process":
                from .procpool import crawl_procpool

                return crawl_procpool(self, links, **common)
            from .parallel import crawl_sharded

            return crawl_sharded(self, links, **common)
        if executor == "process":
            raise ValueError(
                "executor='process' requires a worker count (pass workers=N)"
            )
        if on_lane is not None:
            raise ValueError("on_lane streaming requires the sharded executor "
                             "(pass workers=N)")
        tracer = tracer if tracer is not None else NULL_TRACER
        if quarantine is None:
            from ..core.quarantine import Quarantine

            quarantine = Quarantine()
        quarantine_start = len(quarantine.records)

        if checkpoint is None:
            ckpt: Optional[CrawlCheckpoint] = None
        elif isinstance(checkpoint, CrawlCheckpoint):
            ckpt = checkpoint
        else:
            ckpt = CrawlCheckpoint.load(checkpoint)

        state = self.restore_state(ckpt)
        completed = ckpt.completed if ckpt is not None else None

        preview_images: List[CrawledImage] = []
        pack_images: List[CrawledImage] = []
        packs: List[Pack] = []
        attempt_logs: List[LinkAttemptLog] = []
        since_save = 0

        try:
            for outcome in self.resolve_links(
                enumerate(links), state, completed=completed,
                quarantine=quarantine, stage=stage, tracer=tracer,
            ):
                preview_images.extend(outcome.preview_images)
                pack_images.extend(outcome.pack_images)
                packs.extend(outcome.packs)
                if outcome.log is not None:
                    attempt_logs.append(outcome.log)
                if ckpt is not None and outcome.entry is not None:
                    ckpt.completed[outcome.key] = outcome.entry
                    since_save += 1
                    # Satellite: the expensive stats/breaker serialization
                    # happens only at save points, not on every link.
                    if since_save >= max(1, checkpoint_every):
                        self.sync_checkpoint(ckpt, state)
                        ckpt.save()
                        since_save = 0
                        kill_point("crawl.checkpoint.saved")
        except BaseException:
            # A stop request (SignalInterrupt / KeyboardInterrupt) or
            # stage failure mid-crawl must still leave a resumable
            # snapshot: every settled link is synced and atomically
            # saved before the exception unwinds (DESIGN.md §13).
            if ckpt is not None:
                self.sync_checkpoint(ckpt, state)
                ckpt.save()
            raise

        if ckpt is not None:
            self.sync_checkpoint(ckpt, state)
            ckpt.save()

        return CrawlResult(
            preview_images=preview_images,
            pack_images=pack_images,
            packs=packs,
            stats=state.stats,
            attempt_logs=attempt_logs,
            quarantined=list(quarantine.records[quarantine_start:]),
            breaker_summary=state.breakers.as_dict(),
        )

    # ------------------------------------------------------------------
    def restore_state(self, ckpt: Optional[CrawlCheckpoint]) -> ShardState:
        """Rebuild mutable crawl state from a checkpoint (or start fresh)."""
        if ckpt is not None and ckpt.stats is not None:
            stats = CrawlStats.from_dict(ckpt.stats)
        else:
            stats = CrawlStats()
        if ckpt is not None and ckpt.breakers is not None:
            breakers = BreakerBoard.restore(ckpt.breakers)
        else:
            breakers = BreakerBoard(
                failure_threshold=self._breaker_threshold,
                cooldown=self._breaker_cooldown,
            )
        if ckpt is None:
            return ShardState(stats=stats, breakers=breakers)
        return ShardState(
            stats=stats,
            breakers=breakers,
            clocks=dict(ckpt.domain_clocks),
            budget_spent=ckpt.budget_spent,
            base_clock=ckpt.base_clock(),
        )

    @staticmethod
    def sync_checkpoint(ckpt: CrawlCheckpoint, state: ShardState) -> None:
        """Snapshot shard state into the checkpoint's serialized fields."""
        ckpt.stats = state.stats.to_dict()
        ckpt.breakers = state.breakers.snapshot()
        ckpt.domain_clocks = dict(state.clocks)
        ckpt.clock = max(state.clocks.values(), default=state.base_clock)
        ckpt.budget_spent = state.budget_spent

    # ------------------------------------------------------------------
    def resolve_links(
        self,
        indexed_links: Iterable[Tuple[int, LinkRecord]],
        state: ShardState,
        *,
        completed: Optional[Mapping[str, dict]] = None,
        quarantine: "Quarantine",
        stage: str = "url_crawl",
        tracer=None,
    ) -> Iterator[LinkOutcome]:
        """Resolve link occurrences in order, yielding one outcome each.

        The shared resolution engine of the serial crawl and of every
        lane of the sharded executor: replay-or-fetch, retry policy,
        breaker discipline, ingest/quarantine boundary, and per-shard
        pack deduplication all happen here, against the caller's
        :class:`ShardState`.

        ``completed`` is a read-only view of already-settled checkpoint
        entries; newly settled occurrences come back on
        :attr:`LinkOutcome.entry` — writing them into a checkpoint (and
        deciding when to save) is the caller's job.

        Occurrence indices are counted per URL *within this call*;
        because a URL belongs to exactly one domain, a per-domain lane's
        local count equals the serial crawl's global one.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        occurrences: Dict[str, int] = {}
        seen_pack_ids: Dict[int, None] = {}

        for index, link in indexed_links:
            url_str = str(link.url)
            host = link.url.host
            occurrence = occurrences.get(url_str, 0)
            occurrences[url_str] = occurrence + 1
            key = link_key(url_str, occurrence) if completed is not None else ""

            outcome = LinkOutcome(
                index=index, domain=host,
                final_status=FetchStatus.OK, replayed=False, key=key,
            )
            q_start = len(quarantine.records)
            entry = completed.get(key) if completed is not None else None
            if entry is not None:
                tracer.event("crawl.replay", domain=host, status=entry["status"])
                outcome.replayed = True
                outcome.final_status = FetchStatus(entry["status"])
                outcome.log = self._replay(
                    link, entry, outcome.preview_images, outcome.pack_images,
                    outcome.packs, seen_pack_ids, quarantine, stage,
                )
            else:
                with tracer.span(
                    "crawl.fetch", domain=host, kind=link.link_kind
                ) as span:
                    clock = state.clock_for(host)
                    (final_status, final_attempt, log, resource,
                     clock, state.budget_spent) = self._fetch_with_retry(
                        link, state.stats, state.breakers, clock,
                        state.budget_spent, tracer,
                    )
                    state.clocks[host] = clock
                    state.stats.record(host, final_status)
                    span.set(status=final_status.value, attempts=final_attempt + 1)
                    if final_status is FetchStatus.OK:
                        self._collect(
                            link, resource, outcome.preview_images,
                            outcome.pack_images, outcome.packs,
                            seen_pack_ids, quarantine, stage,
                        )
                outcome.final_status = final_status
                outcome.log = log
                if completed is not None:
                    new_entry: dict = {
                        "status": final_status.value,
                        "attempt": int(final_attempt),
                    }
                    if log is not None:
                        new_entry["log"] = log.to_dict()
                    outcome.entry = new_entry
            outcome.quarantined = list(quarantine.records[q_start:])
            yield outcome

    # ------------------------------------------------------------------
    def _fetch_with_retry(
        self,
        link: LinkRecord,
        stats: CrawlStats,
        breakers: BreakerBoard,
        clock: float,
        budget_spent: int,
        tracer=None,
    ) -> Tuple[FetchStatus, int, Optional[LinkAttemptLog], object, float, int]:
        """Resolve one link through breaker + retry policy.

        Returns ``(final_status, final_attempt, log_or_None, resource,
        clock, budget_spent)``.  ``final_attempt`` is the attempt index
        whose fetch produced ``final_status`` — re-fetching at that index
        reproduces the outcome exactly (this is what checkpoint replay
        relies on).

        The retry engine narrates itself to ``tracer``: one
        ``retry.attempt`` event per transient outcome, ``retry.backoff``
        per sleep, ``retry.giveup`` on exhaustion, and
        ``breaker.open``/``breaker.skip`` on circuit transitions.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        policy = self._policy
        url_str = str(link.url)
        host = link.url.host
        breaker = breakers.breaker(host)

        if not breaker.allow(clock):
            # Time still passes while we move past a tripped domain —
            # without this the breaker could never cool down mid-crawl.
            clock += policy.attempt_cost
            stats.n_breaker_skips += 1
            tracer.event("breaker.skip", domain=host)
            log = LinkAttemptLog(
                url=url_str,
                attempts=[],
                final_status=FetchStatus.SKIPPED_BREAKER_OPEN,
                breaker_skipped=True,
            )
            return FetchStatus.SKIPPED_BREAKER_OPEN, 0, log, None, clock, budget_spent

        attempts: List[LinkAttempt] = []
        attempt = 0
        while True:
            clock += policy.attempt_cost
            result = self._internet.fetch(link.url, attempt=attempt)
            status = result.status
            if not status.transient:
                stats.n_redirect_hops += result.n_hops
                breaker.record_success()
                log = None
                if attempts:  # at least one retry happened
                    attempts.append(LinkAttempt(attempt=attempt, status=status))
                    log = LinkAttemptLog(
                        url=url_str, attempts=attempts, final_status=status
                    )
                return status, attempt, log, result.resource, clock, budget_spent

            stats.n_transient_faults += 1
            tracer.event(
                "retry.attempt", domain=host, attempt=attempt, status=status.value
            )
            state_before = breaker.state
            breaker.record_failure(clock)
            if (
                breaker.state is BreakerState.OPEN
                and state_before is not BreakerState.OPEN
            ):
                tracer.event("breaker.open", domain=host, n_opens=breaker.n_opens)
            budget_ok = (
                policy.retry_budget is None or budget_spent < policy.retry_budget
            )
            can_retry = (
                attempt + 1 < policy.max_attempts
                and budget_ok
                and breaker.allow(clock)
            )
            if not can_retry:
                attempts.append(LinkAttempt(attempt=attempt, status=status))
                stats.n_giveups += 1
                tracer.event(
                    "retry.giveup", domain=host, attempts=attempt + 1,
                    status=status.value, budget_exhausted=not budget_ok,
                )
                log = LinkAttemptLog(
                    url=url_str, attempts=attempts, final_status=status, gave_up=True
                )
                return status, attempt, log, None, clock, budget_spent

            if (
                policy.honor_retry_after
                and status is FetchStatus.RATE_LIMITED
                and result.retry_after is not None
            ):
                delay = result.retry_after
            else:
                u = stable_uniform(self._jitter_seed, url_str, str(attempt), "jitter")
                delay = policy.backoff_delay(attempt, u)
            attempts.append(LinkAttempt(attempt=attempt, status=status, delay=delay))
            tracer.event("retry.backoff", domain=host, attempt=attempt, delay=delay)
            clock += delay
            budget_spent += 1
            stats.n_retries += 1
            attempt += 1

    # ------------------------------------------------------------------
    def _replay(
        self,
        link: LinkRecord,
        entry: dict,
        preview_images: List[CrawledImage],
        pack_images: List[CrawledImage],
        packs: List[Pack],
        seen_pack_ids: Dict[int, None],
        quarantine: "Quarantine",
        stage: str,
    ) -> Optional[LinkAttemptLog]:
        """Re-materialize a checkpointed link outcome without re-crawling.

        Stats are *not* re-recorded (the checkpointed stats already count
        this occurrence); OK resources are fetched back at the recorded
        settling attempt, which is deterministic.  Quarantine records
        *are* re-derived — payload corruption is keyed on the URL alone,
        so the replayed ledger matches the uninterrupted one exactly.
        Returns the re-hydrated attempt log, when one was recorded.
        """
        log_data = entry.get("log")
        log = (
            LinkAttemptLog.from_dict(log_data) if log_data is not None else None
        )
        if FetchStatus(entry["status"]) is not FetchStatus.OK:
            return log
        result = self._internet.fetch(link.url, attempt=int(entry["attempt"]))
        if not result.ok:  # pragma: no cover - world/checkpoint mismatch
            raise RuntimeError(
                f"checkpoint marked {link.url} OK but re-fetch returned "
                f"{result.status.value}; checkpoint does not match this world"
            )
        self._collect(link, result.resource, preview_images, pack_images,
                      packs, seen_pack_ids, quarantine, stage)
        return log

    # ------------------------------------------------------------------
    def _ingest(
        self,
        link: LinkRecord,
        image: SyntheticImage,
        quarantine: "Quarantine",
        stage: str,
        pack_id: Optional[int] = None,
        member_index: Optional[int] = None,
    ) -> Optional[CrawledImage]:
        """Validate and digest one downloaded image — the record boundary.

        Returns the :class:`CrawledImage` for clean payloads; corrupt
        ones (including payloads whose pixel access itself blows up) are
        admitted to the ledger and ``None`` is returned.  Nothing an
        individual payload does can escape this boundary as an
        exception, so one poisoned record can never abort the crawl.
        """
        url_str = str(link.url)
        context: Dict[str, object] = {"link_kind": link.link_kind}
        if pack_id is not None:
            context["pack_id"] = pack_id
        if member_index is not None:
            context["member_index"] = member_index
        memo = self._ingest_memo if self._validate_payloads else None
        if memo is not None:
            key: IngestKey = (url_str, pack_id, member_index)
            outcome = memo.lookup(key)
            if outcome is not None:
                if outcome[0] == "ok":
                    # Replay: the digest is memoised, so the raster is
                    # never rendered — pixels stay lazy until (if ever)
                    # a downstream cache miss demands them.
                    return CrawledImage(
                        image=image,
                        digest=outcome[1],
                        link=link,
                        pack_id=pack_id,
                    )
                quarantine.admit(
                    stage, url_str, rebuild_error(outcome[1], outcome[2]), context
                )
                return None
        try:
            pixels = image.pixels
            if self._validate_payloads:
                validate_raster(pixels, context=url_str)
            crawled = CrawledImage(
                image=image,
                digest=content_digest(image),
                link=link,
                pack_id=pack_id,
            )
            if memo is not None:
                memo.record_ok(key, crawled.digest)
            return crawled
        except Exception as exc:
            if memo is not None:
                memo.record_error(key, exc)
            quarantine.admit(stage, url_str, exc, context)
            return None

    def _collect(
        self,
        link: LinkRecord,
        resource,
        preview_images: List[CrawledImage],
        pack_images: List[CrawledImage],
        packs: List[Pack],
        seen_pack_ids: Dict[int, None],
        quarantine: "Quarantine",
        stage: str,
    ) -> None:
        """Download one OK resource into the result accumulators.

        Every record passes through the :meth:`_ingest` boundary; pack
        archives are collected member-by-member, and a pack whose members
        were partially excised enters the result with only its clean
        members.  An unexpected resource type is itself a quarantined
        per-record outcome (:class:`UnexpectedResourceError`), not a
        crawl-aborting crash.
        """
        if isinstance(resource, SyntheticImage):
            crawled = self._ingest(link, resource, quarantine, stage)
            if crawled is not None:
                preview_images.append(crawled)
        elif isinstance(resource, Pack):
            members: List[SyntheticImage] = []
            for index, image in enumerate(resource.images):
                crawled = self._ingest(
                    link, image, quarantine, stage,
                    pack_id=resource.pack_id, member_index=index,
                )
                if crawled is None:
                    continue
                members.append(image)
                pack_images.append(crawled)
            if members and resource.pack_id not in seen_pack_ids:
                seen_pack_ids[resource.pack_id] = None
                if len(members) == len(resource.images):
                    packs.append(resource)
                else:
                    packs.append(replace(resource, images=members))
        else:
            quarantine.admit(
                stage,
                str(link.url),
                UnexpectedResourceError(
                    f"unexpected resource type {type(resource).__name__}"
                ),
                {"link_kind": link.link_kind},
            )
