"""Transient-fault model for the simulated internet.

The paper's crawler (§4.2) ran against a hostile real internet: requests
time out, services rate-limit, backends throw 5xx errors — *transiently*.
The original :class:`~repro.web.internet.SimulatedInternet` samples each
URL's **permanent** fate once at publish time (dead link, ToS takedown,
registration wall, defunct service); this module layers the missing
*transient* failures on top, at **fetch** time.

Two design rules keep fault injection compatible with reproducibility
and with checkpointed resume:

1. **Faults are a pure function of ``(seed, url, attempt)``.**  Instead
   of drawing from a shared RNG stream (which would make outcomes depend
   on crawl *order*), each fetch derives an independent uniform variate
   from a SHA-256 hash of the injector seed, the URL, and the attempt
   index.  Two crawls that fetch the same URL at the same attempt number
   see the same outcome no matter what happened in between — which is
   exactly what makes a resumed, checkpointed crawl byte-identical to an
   uninterrupted one.
2. **Transient faults hide permanent fates.**  A timeout reveals nothing
   about whether the link is dead; the injector therefore fires *before*
   the registry lookup, and a retried fetch (higher ``attempt``) may then
   observe the underlying permanent status.

Deterministic :class:`ScriptedFaultInjector` profiles exist for tests and
benchmarks that need exact failure schedules rather than rates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Protocol

from .internet import FetchStatus

__all__ = [
    "DomainFaultSpec",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "ScriptedFaultInjector",
    "TransientFault",
    "fault_profile",
    "stable_uniform",
]

_TWO_64 = float(2**64)


def stable_uniform(seed: int, *parts: str) -> float:
    """A uniform variate in ``[0, 1)`` derived purely from ``(seed, parts)``.

    Order-independent across calls: the value depends only on the inputs,
    never on how many variates were drawn before.

    >>> stable_uniform(7, "https://a.com/x", "0") == stable_uniform(7, "https://a.com/x", "0")
    True
    >>> 0.0 <= stable_uniform(7, "anything") < 1.0
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("ascii"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(part.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") / _TWO_64


@dataclass(frozen=True, slots=True)
class TransientFault:
    """One injected transient failure."""

    status: FetchStatus
    #: Server-suggested wait before retrying (rate limits only), seconds.
    retry_after: Optional[float] = None


@dataclass(frozen=True, slots=True)
class DomainFaultSpec:
    """Per-attempt transient-failure rates for one domain.

    Rates are *per fetch attempt* and independent across attempts, so a
    URL behind a spec with total rate ``p`` succeeds within ``k`` retries
    with probability ``1 - p**(k+1)``.
    """

    timeout_rate: float = 0.0
    rate_limit_rate: float = 0.0
    server_error_rate: float = 0.0
    #: ``Retry-After`` value attached to rate-limit responses, seconds.
    retry_after: float = 2.0

    def __post_init__(self) -> None:
        for rate in (self.timeout_rate, self.rate_limit_rate, self.server_error_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fault rates must be within [0, 1]")
        if self.total_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        if self.retry_after < 0:
            raise ValueError("retry_after must be non-negative")

    @property
    def total_rate(self) -> float:
        return self.timeout_rate + self.rate_limit_rate + self.server_error_rate


@dataclass(frozen=True)
class FaultProfile:
    """A named fault model: a default spec plus per-domain overrides."""

    name: str
    default: DomainFaultSpec
    overrides: Mapping[str, DomainFaultSpec] = field(default_factory=dict)

    def spec_for(self, host: str) -> DomainFaultSpec:
        """The spec governing ``host`` (exact host match, then default)."""
        return self.overrides.get(host, self.default)


#: Built-in fault profiles.  ``none`` injects nothing (useful as an
#: explicit baseline); ``flaky`` models an ordinarily unreliable internet;
#: ``hostile`` a heavily degraded one; ``rate_limited`` aggressive
#: throttling with honest ``Retry-After`` headers.
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile("none", DomainFaultSpec()),
    "flaky": FaultProfile(
        "flaky",
        DomainFaultSpec(timeout_rate=0.06, rate_limit_rate=0.04, server_error_rate=0.05),
    ),
    "hostile": FaultProfile(
        "hostile",
        DomainFaultSpec(
            timeout_rate=0.12, rate_limit_rate=0.10, server_error_rate=0.13,
            retry_after=4.0,
        ),
    ),
    "rate_limited": FaultProfile(
        "rate_limited",
        DomainFaultSpec(rate_limit_rate=0.25, retry_after=4.0),
    ),
}


def fault_profile(name: str) -> FaultProfile:
    """Look up a built-in profile by name.

    >>> fault_profile("flaky").name
    'flaky'
    """
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ValueError(f"unknown fault profile {name!r} (known: {known})") from None


class FaultInjectorProtocol(Protocol):  # pragma: no cover - typing aid
    """Anything that can decide whether a fetch attempt faults."""

    def sample(self, host: str, url: str, attempt: int) -> Optional[TransientFault]: ...


class FaultInjector:
    """Rate-based transient-fault injection, deterministic per (url, attempt)."""

    def __init__(self, profile: FaultProfile, seed: int = 0):
        self.profile = profile
        self.seed = int(seed)
        #: Total faults injected, for operator summaries.
        self.n_injected = 0
        self.by_status: Dict[FetchStatus, int] = {}

    def sample(self, host: str, url: str, attempt: int) -> Optional[TransientFault]:
        """Decide the fate of fetch ``attempt`` for ``url`` on ``host``."""
        spec = self.profile.spec_for(host)
        if spec.total_rate == 0.0:
            return None
        u = stable_uniform(self.seed, url, str(attempt))
        if u < spec.timeout_rate:
            fault = TransientFault(FetchStatus.TIMEOUT)
        elif u < spec.timeout_rate + spec.rate_limit_rate:
            fault = TransientFault(FetchStatus.RATE_LIMITED, retry_after=spec.retry_after)
        elif u < spec.total_rate:
            fault = TransientFault(FetchStatus.SERVER_ERROR)
        else:
            return None
        self.n_injected += 1
        self.by_status[fault.status] = self.by_status.get(fault.status, 0) + 1
        return fault

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector(profile={self.profile.name!r}, seed={self.seed})"


class ScriptedFaultInjector:
    """Deterministic schedules for tests: fail the first N attempts.

    ``failures`` maps a full URL string *or* a bare host to the number of
    leading attempts that must fail (URL entries take precedence).  Use
    a large count (e.g. ``10**9``) for a permanently failing target.
    """

    def __init__(
        self,
        failures: Mapping[str, int],
        status: FetchStatus = FetchStatus.TIMEOUT,
        retry_after: Optional[float] = None,
    ):
        if not status.transient:
            raise ValueError(f"scripted status must be transient, got {status}")
        self.failures = dict(failures)
        self.status = status
        self.retry_after = retry_after
        self.n_injected = 0
        self.by_status: Dict[FetchStatus, int] = {}

    def sample(self, host: str, url: str, attempt: int) -> Optional[TransientFault]:
        n_fail = self.failures.get(url)
        if n_fail is None:
            n_fail = self.failures.get(host, 0)
        if attempt >= n_fail:
            return None
        self.n_injected += 1
        self.by_status[self.status] = self.by_status.get(self.status, 0) + 1
        return TransientFault(self.status, retry_after=self.retry_after)
