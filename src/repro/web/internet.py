"""The simulated internet: hosting, origin sites, and fetch semantics.

This is the substrate the crawler (§4.2) runs against.  It models what
the paper's crawler actually experienced:

* content hosted on image-sharing / cloud-storage services, where a link
  may be **alive**, **expired** (free-tier lifetime, deleted uploads),
  **removed for ToS violations** (nudity/copyright), behind a
  **registration wall** (Dropbox, Google Drive), or on a **defunct**
  service (oron);
* *origin sites* — porn sites, social networks, blogs, forums — where the
  model images were published first, which the reverse-search index and
  the Wayback archive know about.

Permanent fetch outcomes are sampled once at publish time from the
hosting service's policy, using the internet's seeded RNG, so a world is
fully reproducible.  *Transient* outcomes (timeouts, rate limits, 5xx
errors) are layered on top at fetch time by an optional fault injector
(:mod:`repro.web.faults`), deterministically per ``(url, attempt)``.
"""

from __future__ import annotations

import enum
import string
import threading
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from ..media.image import SyntheticImage
from ..media.pack import Pack
from .sites import HostingService, ServiceKind, service_by_domain
from .url import Url, normalize_url

__all__ = [
    "FetchResult",
    "FetchStatus",
    "HostedResource",
    "MAX_REDIRECT_HOPS",
    "OriginSite",
    "RedirectPage",
    "SimulatedInternet",
    "TRANSIENT_STATUSES",
]

_TOKEN_ALPHABET = string.ascii_lowercase + string.digits

#: Bound on URL-minting attempts before declaring the namespace exhausted.
_MINT_MAX_TRIES = 1024


class FetchStatus(enum.Enum):
    """Outcome of fetching a URL at crawl time.

    Permanent statuses are sampled once at publish time; transient ones
    (``TIMEOUT``, ``RATE_LIMITED``, ``SERVER_ERROR``) are injected per
    fetch attempt and may clear on retry.  ``SKIPPED_BREAKER_OPEN`` is
    never returned by :meth:`SimulatedInternet.fetch`; the crawler records
    it for links it declined to fetch while a domain's circuit breaker
    was open.
    """

    OK = "ok"
    NOT_FOUND = "not_found"            # expired or deleted
    REMOVED_TOS = "removed_tos"        # taken down for ToS violation
    REGISTRATION_REQUIRED = "registration_required"
    DEFUNCT = "defunct"                # the whole service is gone
    UNKNOWN_HOST = "unknown_host"
    REDIRECT_LOOP = "redirect_loop"    # redirector chain exceeded the hop cap
    # Transient, retryable outcomes (injected by repro.web.faults):
    TIMEOUT = "timeout"                # connection/read timed out
    RATE_LIMITED = "rate_limited"      # throttled; Retry-After may be set
    SERVER_ERROR = "server_error"      # 5xx-style transient backend error
    # Crawler-side accounting (never produced by fetch()):
    SKIPPED_BREAKER_OPEN = "skipped_breaker_open"

    @property
    def transient(self) -> bool:
        """True for outcomes a retry may clear."""
        return self in TRANSIENT_STATUSES


#: Statuses a retry may clear.
TRANSIENT_STATUSES = frozenset(
    {FetchStatus.TIMEOUT, FetchStatus.RATE_LIMITED, FetchStatus.SERVER_ERROR}
)


@dataclass(frozen=True, slots=True)
class OriginSite:
    """A site where images originate (provenance ground truth).

    ``category`` is the *true* content category (e.g. ``"Pornography"``,
    ``"Social Networking"``); the domain classifiers observe it noisily.
    ``site_type`` is the §4.3 hosting typology (image sharing site, forum,
    blog, social network, ...); ``region`` the hosting location.
    """

    domain: str
    category: str
    site_type: str
    region: str


@dataclass(frozen=True, slots=True)
class RedirectPage:
    """An interstitial that forwards to another URL (link-shortener hop).

    Adversarial drift launders pack links through chains of these;
    :meth:`SimulatedInternet.fetch` follows them transparently up to
    :data:`MAX_REDIRECT_HOPS`.
    """

    target: Url


#: Redirect chains longer than this resolve to ``REDIRECT_LOOP``.
MAX_REDIRECT_HOPS = 8


@dataclass
class HostedResource:
    """One URL's content plus its sampled fate."""

    url: Url
    resource: Union[SyntheticImage, Pack, RedirectPage]
    uploaded_at: datetime
    status: FetchStatus


@dataclass(frozen=True, slots=True)
class FetchResult:
    """What the crawler gets back for a URL."""

    url: Url
    status: FetchStatus
    resource: Optional[Union[SyntheticImage, Pack]] = None
    #: Server-suggested wait before retrying (rate limits), seconds.
    retry_after: Optional[float] = None
    #: Redirector hops followed before this result (0 for direct fetches).
    n_hops: int = 0

    @property
    def ok(self) -> bool:
        return self.status is FetchStatus.OK


class SimulatedInternet:
    """URL → content registry with policy-driven fetch outcomes.

    ``fault_injector`` (see :mod:`repro.web.faults`) optionally layers
    transient failures over the permanent fates at fetch time; leave it
    ``None`` for a perfectly reliable network (the pre-fault behaviour).

    ``payload_injector`` (see :mod:`repro.web.payload_faults`) is the
    matching *content*-level hazard: OK fetches may deliver corrupted
    payloads — truncated rasters, NaN poison, decoys — deterministically
    per URL.  Leave it ``None`` for pristine payloads.
    """

    def __init__(self, seed: int = 0, fault_injector=None, payload_injector=None):
        self._rng = np.random.default_rng(seed)
        self._hosted: Dict[str, HostedResource] = {}
        self._origin_sites: Dict[str, OriginSite] = {}
        self._origin_urls: Dict[str, List[Url]] = {}
        # Hosting services minted after world build (domain churn): these
        # exist only on *this* internet, unlike the static Table 3/4
        # registry in repro.web.sites.
        self._dynamic_services: Dict[str, HostingService] = {}
        self._fault_injector = fault_injector
        self._payload_injector = payload_injector
        # Lifetime fetch accounting (telemetry).  Cumulative over the
        # internet's lifetime; per-run consumers (the pipeline's metric
        # mirror) difference ``n_fetch_calls`` around their run.  The
        # lock keeps the counters exact when crawl lanes fetch
        # concurrently (fetch itself is read-only beyond them).
        self._accounting_lock = threading.Lock()
        self._n_fetch_calls = 0
        self._n_injected_faults = 0
        self._fetches_by_host: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    @property
    def fault_injector(self):
        """The active transient-fault injector, or ``None``."""
        return self._fault_injector

    def set_fault_injector(self, injector) -> None:
        """Install (or with ``None``, remove) a transient-fault injector."""
        self._fault_injector = injector

    @property
    def payload_injector(self):
        """The active corrupt-payload injector, or ``None``."""
        return self._payload_injector

    def set_payload_injector(self, injector) -> None:
        """Install (or with ``None``, remove) a corrupt-payload injector."""
        self._payload_injector = injector

    # ------------------------------------------------------------------
    # Hosting on services
    # ------------------------------------------------------------------
    def mint_url(self, domain: str, prefix: str = "") -> Url:
        """Allocate a fresh URL under ``domain``.

        Raises :class:`RuntimeError` if no unused token can be found in a
        bounded number of draws (namespace exhaustion), rather than
        spinning forever.
        """
        for _ in range(_MINT_MAX_TRIES):
            token = "".join(
                _TOKEN_ALPHABET[i] for i in self._rng.integers(0, len(_TOKEN_ALPHABET), size=8)
            )
            url = Url(host=domain, path=f"/{prefix}{token}")
            if str(url) not in self._hosted:
                return url
        raise RuntimeError(
            f"URL namespace exhausted for domain {domain!r}: "
            f"no unused token after {_MINT_MAX_TRIES} attempts"
        )

    def host_on_service(
        self,
        service: HostingService,
        resource: Union[SyntheticImage, Pack],
        uploaded_at: datetime,
        contains_nudity: bool,
    ) -> Url:
        """Publish content on a hosting service; its fate is sampled now.

        The fate order mirrors reality: a defunct service loses
        everything; otherwise ToS enforcement may remove flagged content;
        otherwise free-tier link rot may expire it; registration walls
        apply to whatever survives.
        """
        url = self.mint_url(service.domain)
        if service.defunct:
            status = FetchStatus.DEFUNCT
        elif contains_nudity and self._rng.random() < service.tos_takedown_rate:
            status = FetchStatus.REMOVED_TOS
        elif self._rng.random() < service.dead_link_rate:
            status = FetchStatus.NOT_FOUND
        elif service.requires_registration and isinstance(resource, Pack):
            status = FetchStatus.REGISTRATION_REQUIRED
        else:
            status = FetchStatus.OK
        self._hosted[str(url)] = HostedResource(
            url=url, resource=resource, uploaded_at=uploaded_at, status=status
        )
        return url

    # ------------------------------------------------------------------
    # Origin sites
    # ------------------------------------------------------------------
    def register_origin_site(self, site: OriginSite) -> None:
        """Register a provenance site (idempotent per domain)."""
        existing = self._origin_sites.get(site.domain)
        if existing is not None and existing != site:
            raise ValueError(f"conflicting registration for origin domain {site.domain}")
        self._origin_sites[site.domain] = site

    def host_on_origin(
        self, site: OriginSite, image: SyntheticImage, uploaded_at: datetime
    ) -> Url:
        """Publish an image on an origin site (always alive)."""
        if site.domain not in self._origin_sites:
            self.register_origin_site(site)
        url = self.mint_url(site.domain, prefix="img/")
        self._hosted[str(url)] = HostedResource(
            url=url, resource=image, uploaded_at=uploaded_at, status=FetchStatus.OK
        )
        self._origin_urls.setdefault(site.domain, []).append(url)
        return url

    def origin_site(self, domain: str) -> Optional[OriginSite]:
        """Origin-site metadata for a domain, or ``None``."""
        return self._origin_sites.get(domain)

    def origin_sites(self) -> Iterator[OriginSite]:
        """Iterate over all registered origin sites."""
        return iter(self._origin_sites.values())

    def origin_urls(self, domain: str) -> List[Url]:
        """URLs published on one origin domain."""
        return list(self._origin_urls.get(domain, []))

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    def fetch(self, url: Union[Url, str], attempt: int = 0) -> FetchResult:
        """Fetch a URL at crawl time and return its content or failure.

        ``attempt`` is the zero-based retry index; transient faults are a
        deterministic function of ``(url, attempt)``, so re-fetching at a
        higher attempt may clear a timeout/rate-limit/5xx while the same
        ``(url, attempt)`` pair always reproduces the same outcome.

        :class:`RedirectPage` hops are followed transparently (each hop
        is a full fetch, faults included, at the same ``attempt`` index —
        so a resumed crawl replaying ``(url, attempt)`` re-walks the
        chain identically).  Chains longer than :data:`MAX_REDIRECT_HOPS`
        return ``REDIRECT_LOOP``.
        """
        key = str(url)
        parsed = url if isinstance(url, Url) else normalize_url(key)
        result = self._fetch_once(key, parsed, attempt)
        hops = 0
        while result.ok and isinstance(result.resource, RedirectPage):
            hops += 1
            if hops > MAX_REDIRECT_HOPS:
                return FetchResult(
                    url=result.url, status=FetchStatus.REDIRECT_LOOP, n_hops=hops
                )
            target = result.resource.target
            result = self._fetch_once(str(target), target, attempt)
        if hops == 0:
            return result
        return FetchResult(
            url=result.url,
            status=result.status,
            resource=result.resource,
            retry_after=result.retry_after,
            n_hops=hops,
        )

    def _fetch_once(
        self, key: str, parsed: Optional[Url], attempt: int
    ) -> FetchResult:
        """One fetch without redirect following (see :meth:`fetch`)."""
        with self._accounting_lock:
            self._n_fetch_calls += 1
            if parsed is not None:
                self._fetches_by_host[parsed.host] = (
                    self._fetches_by_host.get(parsed.host, 0) + 1
                )
        # Transient faults fire before the registry lookup: a timeout
        # reveals nothing about whether the link is alive.
        if self._fault_injector is not None and parsed is not None:
            fault = self._fault_injector.sample(parsed.host, key, attempt)
            if fault is not None:
                with self._accounting_lock:
                    self._n_injected_faults += 1
                return FetchResult(
                    url=parsed, status=fault.status, retry_after=fault.retry_after
                )
        hosted = self._hosted.get(key)
        if hosted is None:
            return FetchResult(
                url=parsed if parsed is not None else Url("unknown.invalid", "/"),
                status=FetchStatus.UNKNOWN_HOST,
            )
        if hosted.status is FetchStatus.OK:
            resource = hosted.resource
            if self._payload_injector is not None and not isinstance(
                resource, RedirectPage
            ):
                # Corruption is a pure function of (seed, url) — NOT of
                # the attempt index — so checkpoint replay re-fetching at
                # a recorded attempt sees the identical (corrupt) payload.
                resource = self._payload_injector.corrupt_resource(
                    key, hosted.url.host, resource
                )
            return FetchResult(url=hosted.url, status=FetchStatus.OK, resource=resource)
        return FetchResult(url=hosted.url, status=hosted.status)

    def hosted(self, url: Union[Url, str]) -> Optional[HostedResource]:
        """Direct registry access (world construction and tests only)."""
        return self._hosted.get(str(url))

    def host_exact(
        self,
        url: Url,
        resource: Union[SyntheticImage, Pack, RedirectPage],
        uploaded_at: datetime,
        status: FetchStatus = FetchStatus.OK,
    ) -> Url:
        """Publish content at a caller-chosen URL (drift engine).

        Unlike :meth:`host_on_service` this draws nothing from the
        internet's RNG and samples no fate — the caller owns both, which
        is what lets the drift engine stay a pure function of its own
        hash stream.  Raises if the URL is already taken.
        """
        key = str(url)
        if key in self._hosted:
            raise ValueError(f"URL already hosted: {key}")
        self._hosted[key] = HostedResource(
            url=url, resource=resource, uploaded_at=uploaded_at, status=status
        )
        return url

    def urls_on(self, domain: str) -> List[str]:
        """All hosted URL strings under ``domain``, sorted (drift engine)."""
        return sorted(
            key for key, hosted in self._hosted.items() if hosted.url.host == domain
        )

    # ------------------------------------------------------------------
    # Dynamic hosting services (domain churn)
    # ------------------------------------------------------------------
    def register_service(self, service: HostingService) -> None:
        """Register a churned-in hosting service on this internet."""
        existing = self._dynamic_services.get(service.domain)
        if existing is not None and existing != service:
            raise ValueError(
                f"conflicting registration for service domain {service.domain}"
            )
        self._dynamic_services[service.domain] = service

    def service_for(self, domain: str) -> Optional[HostingService]:
        """Hosting service for ``domain``: dynamic registry, then static."""
        service = self._dynamic_services.get(domain.lower())
        if service is not None:
            return service
        return service_by_domain(domain)

    def dynamic_services(self) -> List[HostingService]:
        """Churned-in services, sorted by domain (deterministic order)."""
        return [
            self._dynamic_services[domain]
            for domain in sorted(self._dynamic_services)
        ]

    @property
    def n_hosted(self) -> int:
        return len(self._hosted)

    # -- fetch accounting (telemetry) ----------------------------------
    @property
    def n_fetch_calls(self) -> int:
        """Lifetime :meth:`fetch` invocations (retries included)."""
        return self._n_fetch_calls

    def fetch_stats(self) -> dict:
        """Snapshot-protocol view of the lifetime fetch accounting."""
        return {
            "n_fetch_calls": self._n_fetch_calls,
            "n_injected_faults": self._n_injected_faults,
            "n_hosts_fetched": len(self._fetches_by_host),
            "top_hosts": dict(
                sorted(
                    self._fetches_by_host.items(), key=lambda kv: (-kv[1], kv[0])
                )[:10]
            ),
        }

    def region_of(self, domain: str) -> Optional[str]:
        """Hosting region of an origin domain (for §4.3 IWF statistics)."""
        site = self._origin_sites.get(domain)
        if site is not None:
            return site.region
        return None

    def site_type_of(self, domain: str) -> Optional[str]:
        """Site typology of a domain (origin sites and hosting services)."""
        site = self._origin_sites.get(domain)
        if site is not None:
            return site.site_type
        service = self.service_for(domain)
        if service is not None:
            return (
                "image sharing site"
                if service.kind is ServiceKind.IMAGE_SHARING
                else "cloud storage"
            )
        return None
