"""The simulated internet: hosting, origin sites, and fetch semantics.

This is the substrate the crawler (§4.2) runs against.  It models what
the paper's crawler actually experienced:

* content hosted on image-sharing / cloud-storage services, where a link
  may be **alive**, **expired** (free-tier lifetime, deleted uploads),
  **removed for ToS violations** (nudity/copyright), behind a
  **registration wall** (Dropbox, Google Drive), or on a **defunct**
  service (oron);
* *origin sites* — porn sites, social networks, blogs, forums — where the
  model images were published first, which the reverse-search index and
  the Wayback archive know about.

Fetch outcomes are sampled once at publish time from the hosting
service's policy, using the internet's seeded RNG, so a world is fully
reproducible.
"""

from __future__ import annotations

import enum
import string
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from ..media.image import SyntheticImage
from ..media.pack import Pack
from .sites import HostingService, ServiceKind, service_by_domain
from .url import Url

__all__ = [
    "FetchResult",
    "FetchStatus",
    "HostedResource",
    "OriginSite",
    "SimulatedInternet",
]

_TOKEN_ALPHABET = string.ascii_lowercase + string.digits


class FetchStatus(enum.Enum):
    """Outcome of fetching a URL at crawl time."""

    OK = "ok"
    NOT_FOUND = "not_found"            # expired or deleted
    REMOVED_TOS = "removed_tos"        # taken down for ToS violation
    REGISTRATION_REQUIRED = "registration_required"
    DEFUNCT = "defunct"                # the whole service is gone
    UNKNOWN_HOST = "unknown_host"


@dataclass(frozen=True, slots=True)
class OriginSite:
    """A site where images originate (provenance ground truth).

    ``category`` is the *true* content category (e.g. ``"Pornography"``,
    ``"Social Networking"``); the domain classifiers observe it noisily.
    ``site_type`` is the §4.3 hosting typology (image sharing site, forum,
    blog, social network, ...); ``region`` the hosting location.
    """

    domain: str
    category: str
    site_type: str
    region: str


@dataclass
class HostedResource:
    """One URL's content plus its sampled fate."""

    url: Url
    resource: Union[SyntheticImage, Pack]
    uploaded_at: datetime
    status: FetchStatus


@dataclass(frozen=True, slots=True)
class FetchResult:
    """What the crawler gets back for a URL."""

    url: Url
    status: FetchStatus
    resource: Optional[Union[SyntheticImage, Pack]] = None

    @property
    def ok(self) -> bool:
        return self.status is FetchStatus.OK


class SimulatedInternet:
    """URL → content registry with policy-driven fetch outcomes."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self._hosted: Dict[str, HostedResource] = {}
        self._origin_sites: Dict[str, OriginSite] = {}
        self._origin_urls: Dict[str, List[Url]] = {}

    # ------------------------------------------------------------------
    # Hosting on services
    # ------------------------------------------------------------------
    def mint_url(self, domain: str, prefix: str = "") -> Url:
        """Allocate a fresh URL under ``domain``."""
        while True:
            token = "".join(
                _TOKEN_ALPHABET[i] for i in self._rng.integers(0, len(_TOKEN_ALPHABET), size=8)
            )
            url = Url(host=domain, path=f"/{prefix}{token}")
            if str(url) not in self._hosted:
                return url

    def host_on_service(
        self,
        service: HostingService,
        resource: Union[SyntheticImage, Pack],
        uploaded_at: datetime,
        contains_nudity: bool,
    ) -> Url:
        """Publish content on a hosting service; its fate is sampled now.

        The fate order mirrors reality: a defunct service loses
        everything; otherwise ToS enforcement may remove flagged content;
        otherwise free-tier link rot may expire it; registration walls
        apply to whatever survives.
        """
        url = self.mint_url(service.domain)
        if service.defunct:
            status = FetchStatus.DEFUNCT
        elif contains_nudity and self._rng.random() < service.tos_takedown_rate:
            status = FetchStatus.REMOVED_TOS
        elif self._rng.random() < service.dead_link_rate:
            status = FetchStatus.NOT_FOUND
        elif service.requires_registration and isinstance(resource, Pack):
            status = FetchStatus.REGISTRATION_REQUIRED
        else:
            status = FetchStatus.OK
        self._hosted[str(url)] = HostedResource(
            url=url, resource=resource, uploaded_at=uploaded_at, status=status
        )
        return url

    # ------------------------------------------------------------------
    # Origin sites
    # ------------------------------------------------------------------
    def register_origin_site(self, site: OriginSite) -> None:
        """Register a provenance site (idempotent per domain)."""
        existing = self._origin_sites.get(site.domain)
        if existing is not None and existing != site:
            raise ValueError(f"conflicting registration for origin domain {site.domain}")
        self._origin_sites[site.domain] = site

    def host_on_origin(
        self, site: OriginSite, image: SyntheticImage, uploaded_at: datetime
    ) -> Url:
        """Publish an image on an origin site (always alive)."""
        if site.domain not in self._origin_sites:
            self.register_origin_site(site)
        url = self.mint_url(site.domain, prefix="img/")
        self._hosted[str(url)] = HostedResource(
            url=url, resource=image, uploaded_at=uploaded_at, status=FetchStatus.OK
        )
        self._origin_urls.setdefault(site.domain, []).append(url)
        return url

    def origin_site(self, domain: str) -> Optional[OriginSite]:
        """Origin-site metadata for a domain, or ``None``."""
        return self._origin_sites.get(domain)

    def origin_sites(self) -> Iterator[OriginSite]:
        """Iterate over all registered origin sites."""
        return iter(self._origin_sites.values())

    def origin_urls(self, domain: str) -> List[Url]:
        """URLs published on one origin domain."""
        return list(self._origin_urls.get(domain, []))

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    def fetch(self, url: Union[Url, str]) -> FetchResult:
        """Fetch a URL at crawl time and return its content or failure."""
        key = str(url)
        hosted = self._hosted.get(key)
        if hosted is None:
            parsed = url if isinstance(url, Url) else None
            return FetchResult(
                url=parsed if parsed is not None else Url("unknown.invalid", "/"),
                status=FetchStatus.UNKNOWN_HOST,
            )
        if hosted.status is FetchStatus.OK:
            return FetchResult(url=hosted.url, status=FetchStatus.OK, resource=hosted.resource)
        return FetchResult(url=hosted.url, status=hosted.status)

    def hosted(self, url: Union[Url, str]) -> Optional[HostedResource]:
        """Direct registry access (world construction and tests only)."""
        return self._hosted.get(str(url))

    @property
    def n_hosted(self) -> int:
        return len(self._hosted)

    def region_of(self, domain: str) -> Optional[str]:
        """Hosting region of an origin domain (for §4.3 IWF statistics)."""
        site = self._origin_sites.get(domain)
        if site is not None:
            return site.region
        return None

    def site_type_of(self, domain: str) -> Optional[str]:
        """Site typology of a domain (origin sites and hosting services)."""
        site = self._origin_sites.get(domain)
        if site is not None:
            return site.site_type
        service = service_by_domain(domain)
        if service is not None:
            return (
                "image sharing site"
                if service.kind is ServiceKind.IMAGE_SHARING
                else "cloud storage"
            )
        return None
