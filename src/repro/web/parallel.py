"""Sharded parallel crawl executor with a deterministic merge.

The serial :meth:`repro.web.crawler.Crawler.crawl` loop resolves links
one at a time even though every piece of mutable crawl state — circuit
breakers, Retry-After handling, the virtual clock — is domain-scoped.
This module exploits that: links are partitioned into **per-domain
lanes** (first-appearance domain order), each lane runs the shared
resolution engine :meth:`~repro.web.crawler.Crawler.resolve_links`
against its own :class:`~repro.web.crawler.ShardState` on a
:class:`~concurrent.futures.ThreadPoolExecutor`, and the lane outcomes
are reassembled **in canonical link order** so that the merged
:class:`~repro.web.crawler.CrawlResult` is *bit-identical* to the serial
one — same :meth:`~repro.web.crawler.CrawlResult.digest`, same attempt
logs, same quarantine ledger, same stats — for any worker count.

Why the merge is exact (the invariants the property tests of
``tests/test_parallel_crawl.py`` pin down):

* a URL belongs to exactly one domain, so per-URL occurrence counting
  inside a lane equals the serial crawl's global count — checkpoint
  keys agree;
* transient faults, payload corruption and backoff jitter are pure
  functions of ``(seed, url, attempt)``, never of crawl order;
* breakers and virtual clocks are per-domain, so a lane's retry
  decisions match the serial loop's for the same links;
* stats merge by addition, and every consumer of the by-status /
  by-domain maps sorts before use, so accumulation order is
  unobservable;
* packs are deduplicated lane-locally and re-deduplicated globally in
  index order, which picks exactly the first-seen copy the serial loop
  keeps.

Checkpoints are **wire-compatible both ways**: a serial checkpoint
resumes under any worker count and vice versa, because the wire format
is domain-scoped (``domain_clocks``) and JSON is written with sorted
keys.  Mid-crawl saves are consistent — each lane's pending entries are
flushed together with a state snapshot captured under the same lane
lock, so a checkpoint never records an entry whose stats it has not
counted.

Streaming: completed lanes are deposited into a **bounded reorder
buffer** and handed to ``on_lane`` in lane order, so the vision stages
can start hashing a finished lane's images while later lanes are still
crawling.  The buffer always accepts the next-needed lane even when
full (lanes start in FIFO order on the executor, so the next-needed
lane is always already running — this is what makes the bound
deadlock-free).

Parallel mode refuses a global ``retry_budget``: the budget is spent in
link order serially and is not decomposable across lanes.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..chaos.sites import kill_point
from ..obs.trace import NULL_TRACER
from .checkpoint import CrawlCheckpoint
from .crawler import (
    CrawlResult,
    CrawlStats,
    Crawler,
    LinkOutcome,
    LinkRecord,
    ShardState,
)
from .retry import BreakerBoard, CircuitBreaker

__all__ = [
    "Lane",
    "ReorderBuffer",
    "crawl_sharded",
    "merge_outcomes",
    "partition_lanes",
]


@dataclass
class Lane:
    """One per-domain shard of a crawl: its links and its mutable state."""

    index: int
    domain: str
    #: ``(global_index, link)`` pairs, in canonical (serial) order.
    items: List[Tuple[int, LinkRecord]]
    state: ShardState
    #: Guards ``state``/``outcomes``/``pending`` as one atomic unit: the
    #: lane runner advances the resolution generator (which mutates
    #: ``state``) and records the outcome under this lock, so a saver
    #: holding it always sees state consistent with the recorded entries.
    lock: threading.Lock = field(default_factory=threading.Lock)
    outcomes: List[LinkOutcome] = field(default_factory=list)
    #: Newly settled ``(key, entry)`` checkpoint pairs not yet flushed.
    pending: List[Tuple[str, dict]] = field(default_factory=list)

    @property
    def n_links(self) -> int:
        return len(self.items)


@dataclass
class _LaneCapture:
    """A consistent snapshot of one lane's state at a save point."""

    stats: CrawlStats
    breakers: Dict[str, dict]
    clocks: Dict[str, float]
    budget_spent: int


class ReorderBuffer:
    """Bounded hand-off restoring lane order for the streaming consumer.

    Producers (lane threads) :meth:`deposit` their payload under their
    lane index; the single consumer :meth:`take`\\ s payloads strictly in
    lane order.  A deposit blocks while the buffer holds ``capacity``
    undelivered payloads — **unless** it is the next lane the consumer
    needs, which is always accepted (otherwise a full buffer of
    out-of-order lanes would deadlock against the consumer waiting for
    the missing one).  :meth:`close` aborts the exchange, waking every
    blocked producer; late deposits are then dropped.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._slots: Dict[int, Any] = {}
        self._next = 0
        self._closed = False
        self._cond = threading.Condition()
        #: Most payloads ever held undelivered (queue-depth high-water).
        self.peak_depth = 0

    def deposit(self, index: int, payload: Any) -> None:
        with self._cond:
            while (
                not self._closed
                and index != self._next
                and len(self._slots) >= self.capacity
            ):
                self._cond.wait()
            if self._closed:
                return
            self._slots[index] = payload
            self.peak_depth = max(self.peak_depth, len(self._slots))
            # The bound is structural, not advisory: a full buffer only
            # ever admits the one next-needed lane, so depth can exceed
            # ``capacity`` by at most that single bypass slot.
            assert len(self._slots) <= self.capacity + 1, (
                f"reorder buffer holds {len(self._slots)} payloads "
                f"against a capacity of {self.capacity}"
            )
            self._cond.notify_all()

    def take(self) -> Any:
        with self._cond:
            while self._next not in self._slots:
                if self._closed:
                    raise RuntimeError("reorder buffer closed while waiting")
                self._cond.wait()
            payload = self._slots.pop(self._next)
            self._next += 1
            self._cond.notify_all()
            return payload

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


def partition_lanes(links: Sequence[LinkRecord]) -> List[Tuple[str, List[Tuple[int, LinkRecord]]]]:
    """Group links by domain, in first-appearance order, keeping indices."""
    lanes: Dict[str, List[Tuple[int, LinkRecord]]] = {}
    for index, link in enumerate(links):
        lanes.setdefault(link.url.host, []).append((index, link))
    return list(lanes.items())


def merge_outcomes(all_outcomes: Sequence[LinkOutcome]):
    """Accumulate index-sorted outcomes exactly like the serial loop.

    Shared by the thread and process executors.  ``all_outcomes`` must
    already be sorted by :attr:`LinkOutcome.index`.  Packs were
    deduplicated shard-locally; re-deduplicating globally in index
    order picks exactly the first-seen copy the serial loop keeps.
    Returns ``(preview_images, pack_images, packs, attempt_logs,
    quarantined_records)``.
    """
    preview_images = []
    pack_images = []
    packs = []
    attempt_logs = []
    quarantined = []
    seen_pack_ids: Dict[int, None] = {}
    for outcome in all_outcomes:
        preview_images.extend(outcome.preview_images)
        pack_images.extend(outcome.pack_images)
        for pack in outcome.packs:
            if pack.pack_id not in seen_pack_ids:
                seen_pack_ids[pack.pack_id] = None
                packs.append(pack)
        if outcome.log is not None:
            attempt_logs.append(outcome.log)
        quarantined.extend(outcome.quarantined)
    return preview_images, pack_images, packs, attempt_logs, quarantined


def _lane_breakers(base: BreakerBoard, domain: str) -> BreakerBoard:
    """A fresh board for one lane, seeded from the base (restored) board.

    The seed is a *copy* of the base breaker, so the base board stays
    frozen while lanes run (mid-crawl savers snapshot it concurrently);
    the merge takes the lane's copy over the base original.
    """
    board = BreakerBoard(
        failure_threshold=base.failure_threshold, cooldown=base.cooldown
    )
    for existing_domain, breaker in base:
        if existing_domain == domain:
            board._breakers[domain] = CircuitBreaker.from_dict(breaker.to_dict())
    return board


def _capture_lane(lane: Lane) -> _LaneCapture:
    """Deep-copy a lane's state; caller must hold ``lane.lock``."""
    return _LaneCapture(
        stats=CrawlStats.from_dict(lane.state.stats.to_dict()),
        breakers=dict(lane.state.breakers.snapshot()["breakers"]),
        clocks=dict(lane.state.clocks),
        budget_spent=lane.state.budget_spent,
    )


def _compose_checkpoint(
    ckpt: CrawlCheckpoint,
    base_state: ShardState,
    base_breakers_snapshot: dict,
    captures: Sequence[_LaneCapture],
) -> None:
    """Write ``base ⊕ Σ captures`` into the checkpoint's state fields."""
    stats = base_state.stats
    for capture in captures:
        stats = stats.merge(capture.stats)
    ckpt.stats = stats.to_dict()

    breakers = dict(base_breakers_snapshot.get("breakers", {}))
    for capture in captures:
        breakers.update(capture.breakers)
    ckpt.breakers = {
        "failure_threshold": base_breakers_snapshot["failure_threshold"],
        "cooldown": base_breakers_snapshot["cooldown"],
        "breakers": breakers,
    }

    clocks = dict(base_state.clocks)
    for capture in captures:
        clocks.update(capture.clocks)
    ckpt.domain_clocks = clocks
    ckpt.clock = max(clocks.values(), default=base_state.base_clock)
    ckpt.budget_spent = base_state.budget_spent + sum(
        capture.budget_spent for capture in captures
    )


def crawl_sharded(
    crawler: Crawler,
    links: Sequence[LinkRecord],
    *,
    workers: int,
    checkpoint: Optional[Union[str, CrawlCheckpoint]] = None,
    checkpoint_every: int = 16,
    quarantine=None,
    stage: str = "url_crawl",
    tracer=None,
    on_lane: Optional[Callable[[int, str, List[LinkOutcome]], None]] = None,
    metrics=None,
    stream_capacity: Optional[int] = None,
) -> CrawlResult:
    """Crawl ``links`` on per-domain lanes; bit-identical to serial.

    ``on_lane(lane_index, domain, outcomes)`` — when given — is invoked
    on the dispatching thread for every lane, **in lane order**, as soon
    as that lane (and all lanes before it) finish: the streaming hook
    the pipeline uses to overlap vision hashing with the crawl.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`, optional)
    receives the parallel-mode instrumentation: a ``crawl.lanes`` gauge,
    a ``crawl.lane_seconds`` histogram, and the
    ``crawl.stream_queue_depth_peak`` gauge (a runtime metric, excluded
    from deterministic views).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if crawler._policy.retry_budget is not None:
        raise ValueError(
            "a global retry_budget is spent in serial link order and cannot "
            "be decomposed across lanes; use workers=None (serial) or a "
            "policy without retry_budget"
        )
    tracer = tracer if tracer is not None else NULL_TRACER
    if quarantine is None:
        from ..core.quarantine import Quarantine

        quarantine = Quarantine()
    quarantine_start = len(quarantine.records)

    if checkpoint is None:
        ckpt: Optional[CrawlCheckpoint] = None
    elif isinstance(checkpoint, CrawlCheckpoint):
        ckpt = checkpoint
    else:
        ckpt = CrawlCheckpoint.load(checkpoint)

    base_state = crawler.restore_state(ckpt)
    base_breakers_snapshot = base_state.breakers.snapshot()
    # Frozen view of already-settled entries: lanes read it, never write.
    completed = dict(ckpt.completed) if ckpt is not None else None

    lane_specs = partition_lanes(links)
    lanes: List[Lane] = []
    for lane_index, (domain, items) in enumerate(lane_specs):
        clocks: Dict[str, float] = {}
        if domain in base_state.clocks:
            clocks[domain] = base_state.clocks[domain]
        lanes.append(
            Lane(
                index=lane_index,
                domain=domain,
                items=items,
                state=ShardState(
                    stats=CrawlStats(),
                    breakers=_lane_breakers(base_state.breakers, domain),
                    clocks=clocks,
                    budget_spent=0,
                    base_clock=base_state.base_clock,
                ),
            )
        )

    if metrics is not None:
        # Note: no "workers" gauge — it would differ between worker
        # counts and break the cross-worker deterministic-view identity.
        # Lane count is a pure function of the link sequence, so it is
        # safe to include.
        metrics.gauge("crawl.lanes").set(len(lanes))

    # -- checkpoint committer ------------------------------------------
    save_lock = threading.Lock()
    count_lock = threading.Lock()
    pending_count = 0

    def flush_and_save() -> None:
        """Flush every lane's pending entries and save one consistent
        checkpoint.  Lock order: ``save_lock`` → each ``lane.lock`` in
        turn (never nested across lanes); lane runners take only their
        own lock, so the order is acyclic."""
        assert ckpt is not None
        captures: List[_LaneCapture] = []
        for lane in lanes:
            with lane.lock:
                for key, entry in lane.pending:
                    ckpt.completed[key] = entry
                lane.pending.clear()
                captures.append(_capture_lane(lane))
        _compose_checkpoint(ckpt, base_state, base_breakers_snapshot, captures)
        ckpt.save()

    def maybe_save() -> None:
        nonlocal pending_count
        if ckpt is None:
            return
        with count_lock:
            pending_count += 1
            due = pending_count >= max(1, checkpoint_every)
            if due:
                pending_count = 0
        if due and save_lock.acquire(blocking=False):
            try:
                flush_and_save()
            finally:
                save_lock.release()
            kill_point("crawl.checkpoint.saved")

    # -- lane runner ----------------------------------------------------
    parent_span = tracer.current
    _DONE = object()

    def run_lane(lane: Lane) -> float:
        """Resolve one lane's links; returns the lane wall time."""
        from ..core.quarantine import Quarantine

        lane_ledger = Quarantine(tracer=tracer)
        t0 = time.perf_counter()
        with tracer.adopt(parent_span):
            with tracer.span(
                "crawl.lane",
                lane=lane.index,
                domain=lane.domain,
                n_links=lane.n_links,
            ) as span:
                resolved = crawler.resolve_links(
                    lane.items,
                    lane.state,
                    completed=completed,
                    quarantine=lane_ledger,
                    stage=stage,
                    tracer=tracer,
                )
                n_new_entries = 0
                while True:
                    # Advance the generator (which mutates lane.state)
                    # and record the outcome under one lock hold, so
                    # checkpoint savers always see entries and state
                    # move together.
                    with lane.lock:
                        outcome = next(resolved, _DONE)
                        if outcome is _DONE:
                            break
                        lane.outcomes.append(outcome)
                        if outcome.entry is not None:
                            lane.pending.append((outcome.key, outcome.entry))
                            n_new_entries = 1
                    if n_new_entries:
                        n_new_entries = 0
                        maybe_save()
                span.set(
                    n_outcomes=len(lane.outcomes),
                    n_quarantined=len(lane_ledger.records),
                )
        return time.perf_counter() - t0

    # -- dispatch + in-order streaming consumption ----------------------
    capacity = stream_capacity if stream_capacity is not None else max(2, workers)
    buffer = ReorderBuffer(capacity=capacity)

    def lane_task(lane: Lane) -> None:
        try:
            wall = run_lane(lane)
            buffer.deposit(lane.index, (lane, wall, None))
        except BaseException as exc:  # surfaced by the consumer
            buffer.deposit(lane.index, (lane, 0.0, exc))

    if lanes:
        try:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(lanes)),
                thread_name_prefix="crawl-lane",
            ) as pool:
                futures = [pool.submit(lane_task, lane) for lane in lanes]
                try:
                    for _ in range(len(lanes)):
                        lane, wall, error = buffer.take()
                        if error is not None:
                            raise error
                        if metrics is not None:
                            metrics.histogram("crawl.lane_seconds").observe(wall)
                        if on_lane is not None:
                            on_lane(lane.index, lane.domain, lane.outcomes)
                finally:
                    # Close *before* the pool's shutdown barrier: blocked
                    # depositors wake (their late deposits are dropped) and
                    # unstarted lanes are cancelled, so an error in the
                    # consumer can never deadlock the shutdown.
                    buffer.close()
                    for future in futures:
                        future.cancel()
        except BaseException:
            # Stop requests and lane failures still leave a resumable
            # checkpoint: all worker threads are parked by now (the
            # pool's with-block waited), so flushing every lane's
            # pending entries is race-free (DESIGN.md §13).
            if ckpt is not None:
                try:
                    flush_and_save()
                except Exception:  # pragma: no cover - best effort
                    pass
            raise

    if metrics is not None:
        metrics.gauge("crawl.stream_queue_depth_peak").set(buffer.peak_depth)

    # -- canonical merge ------------------------------------------------
    all_outcomes = sorted(
        (outcome for lane in lanes for outcome in lane.outcomes),
        key=lambda o: o.index,
    )
    # Transfer ledger records in canonical order without re-firing
    # their quarantine.admit events (the lane ledgers fired them).
    preview_images, pack_images, packs, attempt_logs, quarantined = (
        merge_outcomes(all_outcomes)
    )
    quarantine.records.extend(quarantined)

    merged_stats = base_state.stats
    merged_board = base_state.breakers
    merged_state = ShardState(
        stats=merged_stats,
        breakers=merged_board,
        clocks=dict(base_state.clocks),
        budget_spent=base_state.budget_spent,
        base_clock=base_state.base_clock,
    )
    for lane in lanes:
        merged_state.stats = merged_state.stats.merge(lane.state.stats)
        merged_state.breakers = merged_state.breakers.merge(lane.state.breakers)
        merged_state.clocks.update(lane.state.clocks)
        merged_state.budget_spent += lane.state.budget_spent

    if ckpt is not None:
        for lane in lanes:
            for key, entry in lane.pending:
                ckpt.completed[key] = entry
            lane.pending.clear()
        Crawler.sync_checkpoint(ckpt, merged_state)
        ckpt.save()

    return CrawlResult(
        preview_images=preview_images,
        pack_images=pack_images,
        packs=packs,
        stats=merged_state.stats,
        attempt_logs=attempt_logs,
        quarantined=list(quarantine.records[quarantine_start:]),
        breaker_summary=merged_state.breakers.as_dict(),
    )
