"""Corrupt-payload model for the simulated internet.

PR 1's :mod:`repro.web.faults` models the *transport* failures of the
paper's crawl (§4.2): timeouts, rate limits, 5xx.  This module models
the layer below — fetches that **succeed** but return garbage: truncated
rasters, NaN/Inf pixel blocks, wrong-shape/wrong-dtype payloads,
zero-byte files, decompression bombs and non-image decoys (the HTML
error pages and interstitials image hosts serve instead of content).

The same two design rules as the transport layer apply:

1. **Corruption is a pure function of ``(seed, url)``** (plus the member
   index inside a pack).  No shared RNG stream: whether a payload is
   corrupt — and *how* — never depends on crawl order or retry attempt,
   so checkpointed resume re-materializes the identical corrupt payload
   and the quarantine ledger of a resumed crawl is byte-identical to an
   uninterrupted one.
2. **Corruption never mutates hosted content.**  The injector wraps the
   hosted image in a :class:`CorruptImage` view that renders its own
   corrupted raster; the clean original (and every other URL serving the
   same content) is untouched.  Restricting any run to its clean records
   therefore reproduces the corruption-free run bit for bit — the
   invariant the chaos suite enforces.

Profiles: ``none`` (explicit baseline), ``dirty`` (an ordinarily messy
host population), ``hostile`` (a heavily poisoned one).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..media.image import SyntheticImage
from ..media.pack import Pack
from .faults import stable_uniform

__all__ = [
    "CORRUPTION_KINDS",
    "CorruptImage",
    "PAYLOAD_PROFILES",
    "PayloadFaultInjector",
    "PayloadFaultProfile",
    "PayloadFaultSpec",
    "corrupt_raster",
    "payload_profile",
    "stable_noise_seed",
]

#: Corruption modes the injector can apply, mirroring what hostile image
#: hosts actually serve (see DESIGN.md §8).
CORRUPTION_KINDS: Tuple[str, ...] = (
    "truncated",        # download cut off after a few rows
    "nan_pixels",       # decoder emitted NaN blocks
    "inf_pixels",       # decoder emitted +/-Inf blocks
    "grayscale_2d",     # wrong shape: 2-D single-plane raster
    "rgba",             # wrong shape: 4-channel raster
    "uint8",            # wrong dtype: byte-valued pixels
    "zero_byte",        # empty file
    "absurd_dims",      # decompression bomb (implausible dimensions)
    "decoy_bytes",      # HTML error page instead of an image
)

#: Edge length used for the decompression-bomb corruption; just beyond
#: :data:`repro.media.validate.MAX_RASTER_DIM` so validation flags it
#: without the injector materialising gigabytes.
_ABSURD_WIDTH = 8192

_DECOY_PAYLOAD = (
    b"<!DOCTYPE html><html><head><title>404</title></head>"
    b"<body><h1>File not found</h1><p>The image you requested has been "
    b"removed or never existed.</p></body></html>"
)


def stable_noise_seed(seed: int, *parts: str) -> int:
    """A 64-bit RNG seed derived purely from ``(seed, parts)``.

    The corruption *content* (which pixels go NaN, where the truncation
    cut lands) must be as order-independent as the corruption *decision*,
    so it is seeded from the same hash family as
    :func:`repro.web.faults.stable_uniform`.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("ascii"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(part.encode("utf-8"))
    return int.from_bytes(digest.digest()[8:16], "big")


def corrupt_raster(
    raster: np.ndarray, kind: str, rng: np.random.Generator
) -> Union[np.ndarray, bytes]:
    """Apply one corruption mode to a copy of ``raster``.

    The input is never mutated.  Returns the corrupted payload, which is
    not necessarily an array (``decoy_bytes`` yields raw HTML bytes).
    """
    if kind == "truncated":
        keep = int(rng.integers(1, 7))  # < MIN_RASTER_DIM rows survive
        return raster[:keep].copy()
    if kind == "nan_pixels":
        out = raster.copy()
        flat = out.reshape(-1)
        n_poison = max(1, flat.size // 64)
        idx = rng.choice(flat.size, size=n_poison, replace=False)
        flat[idx] = np.nan
        return out
    if kind == "inf_pixels":
        out = raster.copy()
        flat = out.reshape(-1)
        n_poison = max(1, flat.size // 64)
        idx = rng.choice(flat.size, size=n_poison, replace=False)
        flat[idx] = np.where(rng.random(n_poison) < 0.5, np.inf, -np.inf)
        return out
    if kind == "grayscale_2d":
        return raster.mean(axis=2)
    if kind == "rgba":
        alpha = np.ones(raster.shape[:2] + (1,), dtype=raster.dtype)
        return np.concatenate([raster, alpha], axis=2)
    if kind == "uint8":
        return (np.clip(raster, 0.0, 1.0) * 255.0).astype(np.uint8)
    if kind == "zero_byte":
        return np.empty((0, 0, 3), dtype=np.float64)
    if kind == "absurd_dims":
        return np.zeros((raster.shape[0], _ABSURD_WIDTH, 3), dtype=np.float64)
    if kind == "decoy_bytes":
        return _DECOY_PAYLOAD
    raise ValueError(f"unknown corruption kind {kind!r}")


class CorruptImage(SyntheticImage):
    """A corrupted *view* of a hosted image.

    Behaves like a :class:`~repro.media.image.SyntheticImage` (same id,
    same latent, lazy cached payload) but renders the corrupted payload
    instead of the clean raster.  The hosted original's pixel cache is
    never touched, so other URLs serving the same content stay clean.
    """

    __slots__ = ("corruption", "_noise_seed")

    def __init__(self, base: SyntheticImage, corruption: str, noise_seed: int):
        if corruption not in CORRUPTION_KINDS:
            raise ValueError(f"unknown corruption kind {corruption!r}")
        super().__init__(base.image_id, base.latent)
        self.corruption = corruption
        self._noise_seed = int(noise_seed)

    @property
    def pixels(self):
        """The corrupted payload (array or bytes), rendered lazily."""
        if self._pixels is None:
            from ..media.render import render_latent

            clean = render_latent(self.latent)
            rng = np.random.default_rng(self._noise_seed)
            self._pixels = corrupt_raster(clean, self.corruption, rng)
        return self._pixels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CorruptImage(id={self.image_id}, corruption={self.corruption!r})"
        )


@dataclass(frozen=True)
class PayloadFaultSpec:
    """Per-payload corruption rates for one domain.

    ``corrupt_rate`` is the probability that a successfully fetched
    payload is corrupt; ``kind_weights`` shapes which corruption mode is
    applied (uniform over :data:`CORRUPTION_KINDS` by default).
    """

    corrupt_rate: float = 0.0
    kind_weights: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ValueError("corrupt_rate must be within [0, 1]")
        for kind, weight in self.kind_weights.items():
            if kind not in CORRUPTION_KINDS:
                raise ValueError(f"unknown corruption kind {kind!r}")
            if weight < 0:
                raise ValueError("kind weights must be non-negative")

    def normalized_weights(self) -> Tuple[Tuple[str, float], ...]:
        """(kind, cumulative-normalised-weight) pairs in canonical order."""
        weights = {
            kind: float(self.kind_weights.get(kind, 1.0 if not self.kind_weights else 0.0))
            for kind in CORRUPTION_KINDS
        }
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("at least one corruption kind needs weight > 0")
        pairs = []
        cumulative = 0.0
        for kind in CORRUPTION_KINDS:
            cumulative += weights[kind] / total
            pairs.append((kind, cumulative))
        return tuple(pairs)


@dataclass(frozen=True)
class PayloadFaultProfile:
    """A named corruption model: default spec plus per-domain overrides."""

    name: str
    default: PayloadFaultSpec
    overrides: Mapping[str, PayloadFaultSpec] = field(default_factory=dict)

    def spec_for(self, host: str) -> PayloadFaultSpec:
        """The spec governing ``host`` (exact host match, then default)."""
        return self.overrides.get(host, self.default)


#: Built-in payload profiles.  ``none`` corrupts nothing (the explicit
#: baseline the chaos invariant compares against); ``dirty`` models an
#: ordinarily messy host population; ``hostile`` a heavily poisoned one.
PAYLOAD_PROFILES: Dict[str, PayloadFaultProfile] = {
    "none": PayloadFaultProfile("none", PayloadFaultSpec()),
    "dirty": PayloadFaultProfile("dirty", PayloadFaultSpec(corrupt_rate=0.06)),
    "hostile": PayloadFaultProfile(
        "hostile", PayloadFaultSpec(corrupt_rate=0.25)
    ),
}


def payload_profile(name: str) -> PayloadFaultProfile:
    """Look up a built-in payload profile by name.

    >>> payload_profile("dirty").name
    'dirty'
    """
    try:
        return PAYLOAD_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PAYLOAD_PROFILES))
        raise ValueError(
            f"unknown payload profile {name!r} (known: {known})"
        ) from None


class PayloadFaultInjector:
    """Rate-based payload corruption, deterministic per URL.

    Installed on a :class:`~repro.web.internet.SimulatedInternet` via
    :meth:`~repro.web.internet.SimulatedInternet.set_payload_injector`;
    OK fetch results pass through :meth:`corrupt_resource` on the way
    out.  Counters track every corruption *event* (one per corrupted
    image payload served), which the chaos suite reconciles against the
    quarantine ledger.
    """

    def __init__(self, profile: PayloadFaultProfile, seed: int = 0):
        self.profile = profile
        self.seed = int(seed)
        #: Corrupted image payloads served, for operator summaries and
        #: the quarantine-count invariant.
        self.n_injected = 0
        self.by_kind: Dict[str, int] = {}
        # Injection *decisions* are pure functions of (seed, url) so the
        # injector is logically stateless, but the event counters are
        # shared mutable state once crawl lanes fetch concurrently.
        self._count_lock = threading.Lock()

    # ------------------------------------------------------------------
    def decide(self, host: str, url: str, *extra: str) -> Optional[str]:
        """Which corruption (if any) hits this payload — pure function."""
        spec = self.profile.spec_for(host)
        if spec.corrupt_rate == 0.0:
            return None
        u = stable_uniform(self.seed, url, "payload", *extra)
        if u >= spec.corrupt_rate:
            return None
        pick = stable_uniform(self.seed, url, "payload-kind", *extra)
        for kind, cumulative in spec.normalized_weights():
            if pick < cumulative:
                return kind
        return CORRUPTION_KINDS[-1]  # pragma: no cover - fp guard

    # ------------------------------------------------------------------
    def corrupt_resource(
        self, url: str, host: str, resource: Union[SyntheticImage, Pack]
    ) -> Union[SyntheticImage, Pack]:
        """Possibly-corrupted view of a fetched resource.

        Images corrupt whole; pack archives corrupt member-by-member
        (each member keyed on ``(url, index)``), mirroring how a partial
        archive download damages individual files.
        """
        if isinstance(resource, Pack):
            members = []
            changed = False
            for index, image in enumerate(resource.images):
                kind = self.decide(host, url, str(index))
                if kind is None:
                    members.append(image)
                    continue
                members.append(self._wrap(image, kind, url, str(index)))
                changed = True
            if not changed:
                return resource
            return replace(resource, images=members)
        kind = self.decide(host, url)
        if kind is None:
            return resource
        return self._wrap(resource, kind, url)

    def _wrap(
        self, image: SyntheticImage, kind: str, url: str, *extra: str
    ) -> CorruptImage:
        with self._count_lock:
            self.n_injected += 1
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        return CorruptImage(
            image, kind, stable_noise_seed(self.seed, url, "payload-noise", *extra)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PayloadFaultInjector(profile={self.profile.name!r}, "
            f"seed={self.seed})"
        )
