"""Process-backed crawl executor: true multi-core lanes, same bits.

:func:`crawl_procpool` is the third executor behind
:meth:`repro.web.crawler.Crawler.crawl` (serial loop, thread-sharded
:func:`repro.web.parallel.crawl_sharded`, and this).  It exists because
the thread executor cannot beat the GIL where Python dominates the
per-link cost: lanes here run in **forked worker processes**, so link
resolution, payload rendering, validation and digesting all execute on
separate cores.

The contract is unchanged and deliberately strict: for any worker
count, fault/payload/drift profile and checkpoint state, the merged
:class:`~repro.web.crawler.CrawlResult` — digest, attempt logs,
quarantine ledger, stats — and the final checkpoint bytes are
**bit-identical** to the serial loop (property-tested by
``tests/test_procpool.py``).  Three mechanisms make that hold:

* **Chunked work stealing.**  Links are partitioned into per-domain
  lanes exactly as the thread executor does, but a *hot* lane may be
  split into chunks at link-index boundaries so one giant domain no
  longer bounds the crawl.  Splitting is gated conservatively
  (:func:`_lane_splittable`): no fault injector (retry/breaker/backoff
  decisions would couple chunks through the domain clock), no duplicate
  URLs in the lane (occurrence counting is per-``resolve_links`` call),
  and no non-pristine inherited breaker.  Under those conditions every
  fetch settles on attempt 0 and advances the domain clock by exactly
  ``attempt_cost``, so each chunk's start clock is precomputed by the
  same repeated addition the serial loop performs — float-exact, never
  ``count * cost`` — and chunk states compose associatively.

* **Shared-memory raster arena.**  Workers move every raster they
  materialised into one ``multiprocessing.shared_memory`` segment per
  chunk and ship ``(name, offsets, shapes, dtypes)`` instead of pickled
  pixel copies.  The parent re-attaches, **unlinks immediately** (so a
  crash anywhere after adoption cannot leak ``/dev/shm``), and injects
  zero-copy ndarray views back into the unpickled
  :class:`~repro.media.image.SyntheticImage` objects; the segment is
  closed when the last view dies (:class:`ArenaLease`).  Rasters that
  were never materialised (ingest-memo replays) stay lazy and re-render
  in the parent on demand — renders are pure functions of the latent.

* **Canonical merge + in-order commit frontier.**  Chunk outcomes are
  re-sorted by original link index and merged with the same
  re-deduplication the thread executor uses; merged clocks/stats/
  breakers compose per lane in sequence order.  Mid-crawl checkpoint
  saves only ever include a lane's *prefix* of committed chunks, so
  every periodic snapshot is a state the serial loop could have
  reached — which is what makes checkpoints wire-compatible across
  executors in both directions.

Requires the ``fork`` start method (workers inherit the crawler and the
simulated internet by memory; nothing unpicklable crosses a pipe).
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import time
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context, resource_tracker
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..chaos.sites import kill_point
from ..obs.trace import NULL_TRACER
from .checkpoint import CrawlCheckpoint, link_key
from .crawler import (
    CrawlResult,
    CrawlStats,
    Crawler,
    IngestMemo,
    LinkOutcome,
    LinkRecord,
    ShardState,
)
from .parallel import (
    _LaneCapture,
    _compose_checkpoint,
    _lane_breakers,
    merge_outcomes,
    partition_lanes,
)
from .retry import BreakerBoard, BreakerState

__all__ = [
    "ArenaLease",
    "Chunk",
    "adopt_arena",
    "crawl_procpool",
    "export_arena",
    "plan_chunks",
]

#: Never split a lane into chunks smaller than this many links: the
#: chunk fixed costs (state shipping, arena setup) would swamp the win.
MIN_CHUNK_LINKS = 8

#: Raster offsets inside an arena segment are aligned to this many
#: bytes so injected views are safe for any dtype the media layer uses.
_ARENA_ALIGN = 16

#: Queue poll interval, seconds.  Workers use it to notice an orphaned
#: parent (``getppid`` changed after a SIGKILL); the parent uses it to
#: notice dead workers.  Pure liveness plumbing — no result ever waits
#: on it.
_POLL_SECONDS = 0.2


# ----------------------------------------------------------------------
# Chunk planning
# ----------------------------------------------------------------------

@dataclass
class Chunk:
    """One schedulable slice of a lane: contiguous links plus state.

    ``seq`` orders chunks within their lane; an unsplit lane is exactly
    one chunk with ``seq == 0``.  ``state`` is prepared by the parent
    *before* forking (workers inherit it copy-on-write, mutate their
    copy, and ship it back with the results).
    """

    chunk_id: int
    lane_index: int
    domain: str
    seq: int
    items: List[Tuple[int, LinkRecord]]
    state: ShardState

    @property
    def n_links(self) -> int:
        return len(self.items)


def _breaker_pristine(breaker) -> bool:
    """True when a breaker is indistinguishable from a fresh one."""
    return (
        breaker.state is BreakerState.CLOSED
        and breaker.consecutive_failures == 0
        and breaker.opened_at is None
        and breaker.n_opens == 0
    )


def _lane_splittable(
    domain: str,
    items: Sequence[Tuple[int, LinkRecord]],
    base_board: BreakerBoard,
    fault_injector,
) -> bool:
    """Whether a lane's links may be resolved in independent chunks.

    Splitting is only exact when no cross-link state can flow between
    chunks:

    * a fault injector couples links through retries, backoff delays
      and breaker trips, all mediated by the running domain clock;
    * duplicate URLs couple links through per-call occurrence counting
      (checkpoint keys) — a later chunk would restart the count at 0;
    * a non-pristine inherited breaker couples links through its
      cooldown window.

    When the gate refuses, the lane simply runs as one chunk — the
    invariant never depends on splitting, only the speedup does.
    """
    if fault_injector is not None:
        return False
    seen_urls: set = set()
    for _, link in items:
        url = str(link.url)
        if url in seen_urls:
            return False
        seen_urls.add(url)
    for existing_domain, breaker in base_board:
        if existing_domain == domain:
            return _breaker_pristine(breaker)
    return True


def plan_chunks(
    links: Sequence[LinkRecord],
    *,
    base_state: ShardState,
    completed: Optional[Dict[str, dict]],
    policy,
    workers: int,
    fault_injector=None,
) -> Tuple[List[Chunk], List[List[int]]]:
    """Partition ``links`` into lanes, then lanes into chunks.

    Returns ``(chunks, lane_chunk_ids)`` where ``lane_chunk_ids[i]`` is
    the ordered chunk ids of lane ``i``.  Chunk start clocks are
    computed by the exact repeated addition the serial loop performs:
    one ``+= attempt_cost`` per *non-replayed* link before the boundary
    (binary-float sums and products differ, so ``count * cost`` would
    break bit-identity).
    """
    lane_specs = partition_lanes(links)
    chunks: List[Chunk] = []
    lane_chunk_ids: List[List[int]] = []
    threshold = base_state.breakers.failure_threshold
    cooldown = base_state.breakers.cooldown
    for lane_index, (domain, items) in enumerate(lane_specs):
        n_parts = 1
        if (
            workers > 1
            and len(items) >= 2 * MIN_CHUNK_LINKS
            and _lane_splittable(domain, items, base_state.breakers, fault_injector)
        ):
            n_parts = min(workers * 2, len(items) // MIN_CHUNK_LINKS)
        ids: List[int] = []
        if n_parts <= 1:
            clocks: Dict[str, float] = {}
            if domain in base_state.clocks:
                clocks[domain] = base_state.clocks[domain]
            state = ShardState(
                stats=CrawlStats(),
                breakers=_lane_breakers(base_state.breakers, domain),
                clocks=clocks,
                budget_spent=0,
                base_clock=base_state.base_clock,
            )
            ids.append(len(chunks))
            chunks.append(
                Chunk(
                    chunk_id=len(chunks), lane_index=lane_index, domain=domain,
                    seq=0, items=list(items), state=state,
                )
            )
        else:
            n = len(items)
            sizes = [
                n // n_parts + (1 if i < n % n_parts else 0)
                for i in range(n_parts)
            ]
            clock = base_state.clock_for(domain)
            pos = 0
            for seq, size in enumerate(sizes):
                part = list(items[pos:pos + size])
                pos += size
                state = ShardState(
                    stats=CrawlStats(),
                    breakers=BreakerBoard(
                        failure_threshold=threshold, cooldown=cooldown
                    ),
                    clocks={},
                    budget_spent=0,
                    # The chunk's domain clock starts where the serial
                    # loop would stand at this boundary.
                    base_clock=clock,
                )
                ids.append(len(chunks))
                chunks.append(
                    Chunk(
                        chunk_id=len(chunks), lane_index=lane_index,
                        domain=domain, seq=seq, items=part, state=state,
                    )
                )
                for _, link in part:
                    # Replayed occurrences do not advance the clock in
                    # the serial loop either.  The gate guarantees the
                    # URLs are distinct, so occurrence is always 0.
                    if (
                        completed is None
                        or link_key(str(link.url), 0) not in completed
                    ):
                        clock += policy.attempt_cost
        lane_chunk_ids.append(ids)
    return chunks, lane_chunk_ids


# ----------------------------------------------------------------------
# Shared-memory raster arena
# ----------------------------------------------------------------------

def _iter_chunk_images(outcomes: Sequence[LinkOutcome]):
    """Unique :class:`SyntheticImage` objects in canonical traversal order.

    The order is a pure function of the outcome structure, so the
    parent (walking the *unpickled* outcomes) visits the same sequence
    the worker did — pickle preserves shared references within one
    payload, which is what keys arena slots to images without ids.
    """
    seen: set = set()
    for outcome in outcomes:
        for crawled in outcome.preview_images:
            if id(crawled.image) not in seen:
                seen.add(id(crawled.image))
                yield crawled.image
        for crawled in outcome.pack_images:
            if id(crawled.image) not in seen:
                seen.add(id(crawled.image))
                yield crawled.image
        for pack in outcome.packs:
            for image in pack.images:
                if id(image) not in seen:
                    seen.add(id(image))
                    yield image


def export_arena(outcomes: Sequence[LinkOutcome]) -> Optional[dict]:
    """Move every materialised raster into one shared-memory segment.

    Returns the arena descriptor ``{"name", "size", "slots"}`` (or
    ``None`` when nothing was materialised) where each slot is
    ``(traversal_index, offset, shape, dtype_str)``.  The images'
    in-object pixel references are dropped, so pickling the outcomes
    ships latents and digests — never pixel bytes.  On any failure the
    segment is unlinked before the exception propagates.
    """
    materialized: List[Tuple[int, Any]] = []
    for index, image in enumerate(_iter_chunk_images(outcomes)):
        if image._pixels is not None:
            materialized.append((index, image))
    if not materialized:
        return None
    slots: List[Tuple[int, int, tuple, str]] = []
    total = 0
    for index, image in materialized:
        raster = image._pixels
        slots.append((index, total, tuple(raster.shape), raster.dtype.str))
        padded = (raster.nbytes + _ARENA_ALIGN - 1) // _ARENA_ALIGN * _ARENA_ALIGN
        total += max(padded, _ARENA_ALIGN)
    shm = SharedMemory(create=True, size=total)
    try:
        for (index, image), (_, offset, shape, dtype_str) in zip(
            materialized, slots
        ):
            raster = image._pixels
            view = np.ndarray(shape, dtype=np.dtype(dtype_str),
                              buffer=shm.buf, offset=offset)
            view[...] = raster
            del view
            image._pixels = None
    except BaseException:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        raise
    descriptor = {"name": shm.name, "size": total, "slots": slots}
    shm.close()
    return descriptor


class ArenaLease:
    """Keeps an adopted segment mapped until every injected view dies.

    ``SharedMemory.close`` raises ``BufferError`` while ndarray views
    into its buffer are alive, so the parent cannot close eagerly; each
    view instead carries a ``weakref.finalize`` that calls
    :meth:`release`, and the mapping closes when the count reaches
    zero.  The file itself is already unlinked — the lease only holds
    address space, never a ``/dev/shm`` entry.
    """

    def __init__(self, shm: SharedMemory, n_views: int):
        self._shm = shm
        self._live = n_views

    def release(self) -> None:
        self._live -= 1
        if self._live <= 0:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - shutdown-order race
                pass


def _unlink_segment(name: str) -> None:
    """Best-effort unlink of a segment the parent never adopted."""
    try:
        shm = SharedMemory(name=name)
    except FileNotFoundError:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - concurrent cleanup
        pass


def adopt_arena(arena: Optional[dict], outcomes: Sequence[LinkOutcome]) -> int:
    """Attach a shipped arena, unlink it, and inject raster views.

    Unlinking happens *before* views are handed out: from this point no
    crash can leak the segment (the memory lives until the last mapping
    closes).  Returns the number of bytes adopted.
    """
    if arena is None:
        return 0
    import weakref

    shm = SharedMemory(name=arena["name"])
    # Unlinking also unregisters the name from the resource tracker.
    # Worker create and parent attach both registered it, but the
    # tracker's cache is a set — forked workers share the parent's
    # tracker (``ensure_running`` pre-fork) — so the single unregister
    # leaves nothing behind to warn about at shutdown.
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - double recovery
        pass
    slots = arena["slots"]
    lease = ArenaLease(shm, n_views=len(slots))
    by_index = {index: (offset, shape, dtype_str)
                for index, offset, shape, dtype_str in slots}
    for index, image in enumerate(_iter_chunk_images(outcomes)):
        slot = by_index.pop(index, None)
        if slot is None:
            continue
        offset, shape, dtype_str = slot
        view = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str),
                          buffer=shm.buf, offset=offset)
        weakref.finalize(view, lease.release)
        image._pixels = view
        if not by_index:
            break
    # Slots that found no image would mean the traversal diverged
    # between worker and parent — release their refs so the mapping
    # still closes, then fail loudly.
    for _ in range(len(by_index)):
        lease.release()
    if by_index:  # pragma: no cover - structural invariant
        raise RuntimeError(
            f"arena slots {sorted(by_index)} had no matching image; "
            "worker/parent traversal order diverged"
        )
    return int(arena["size"])


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

class _DeltaIngestMemo:
    """Worker-side overlay over the forked ingest memo.

    After the fork each worker holds a private copy of the crawler's
    :class:`~repro.web.crawler.IngestMemo`; recording into it would be
    invisible to the parent (and to the persistent store).  The overlay
    reads through to the inherited base but collects fresh recordings
    separately, so each chunk result ships only its delta and the
    parent preloads it into the real memo.
    """

    def __init__(self, base: IngestMemo):
        self._base = base
        self._fresh: Dict[tuple, tuple] = {}

    def lookup(self, key):
        outcome = self._fresh.get(key)
        if outcome is not None:
            return outcome
        return self._base.lookup(key)

    def record_ok(self, key, digest: str) -> None:
        self._fresh[key] = ("ok", digest)

    def record_error(self, key, error: BaseException) -> None:
        self._fresh[key] = ("err", type(error).__name__, str(error))

    def drain(self) -> List[Tuple[tuple, tuple]]:
        items = list(self._fresh.items())
        self._fresh.clear()
        return items


def _run_chunk(
    crawler: Crawler,
    chunk: Chunk,
    completed: Optional[Dict[str, dict]],
    stage: str,
    delta: Optional[_DeltaIngestMemo],
) -> dict:
    """Resolve one chunk's links against its own state; package results."""
    from ..core.quarantine import Quarantine

    ledger = Quarantine()
    t0 = time.perf_counter()
    outcomes = list(
        crawler.resolve_links(
            chunk.items, chunk.state, completed=completed,
            quarantine=ledger, stage=stage, tracer=NULL_TRACER,
        )
    )
    wall = time.perf_counter() - t0
    arena = export_arena(outcomes)
    return {
        "outcomes": outcomes,
        "state": chunk.state,
        "arena": arena,
        "memo": delta.drain() if delta is not None else [],
        "wall": wall,
    }


def _worker_main(crawler, chunks, completed, stage, task_q, result_q) -> None:
    """Worker loop: pull chunk ids, resolve, ship results.

    Exits on the ``None`` sentinel, or hard (``os._exit``) when the
    parent disappears — a SIGKILLed parent (the chaos harness does
    exactly this) must not strand crawling orphans.
    """
    parent_pid = os.getppid()
    delta: Optional[_DeltaIngestMemo] = None
    if crawler._ingest_memo is not None:
        delta = _DeltaIngestMemo(crawler._ingest_memo)
        crawler._ingest_memo = delta
    while True:
        try:
            task = task_q.get(timeout=_POLL_SECONDS)
        except queue_mod.Empty:
            if os.getppid() != parent_pid:
                result_q.cancel_join_thread()
                os._exit(1)
            continue
        if task is None:
            return
        try:
            payload = _run_chunk(crawler, chunks[task], completed, stage, delta)
        except BaseException as exc:
            try:
                pickle.dumps(exc)
            except Exception:
                exc = RuntimeError(f"{type(exc).__name__}: {exc}")
            result_q.put(("error", task, os.getpid(), exc))
            continue
        try:
            result_q.put(("ok", task, os.getpid(), payload))
        except BaseException:  # pragma: no cover - parent gone mid-put
            if payload["arena"] is not None:
                _unlink_segment(payload["arena"]["name"])
            raise


# ----------------------------------------------------------------------
# Parent scheduler
# ----------------------------------------------------------------------

@dataclass
class _LaneProgress:
    """Commit-frontier bookkeeping for one lane in the parent."""

    n_chunks: int
    #: Received-but-uncommitted chunk payloads, keyed by ``seq``.
    waiting: Dict[int, dict] = field(default_factory=dict)
    #: Next ``seq`` to commit (all earlier chunks are committed).
    frontier: int = 0
    #: Outcomes of committed chunks, concatenated in ``seq`` order.
    outcomes: List[LinkOutcome] = field(default_factory=list)
    #: Summed wall seconds of committed chunks.
    wall: float = 0.0
    #: Worker pid per committed ``seq`` (steal accounting).
    pids: List[int] = field(default_factory=list)
    accum: Optional[ShardState] = None

    @property
    def done(self) -> bool:
        return self.frontier >= self.n_chunks


def crawl_procpool(
    crawler: Crawler,
    links: Sequence[LinkRecord],
    *,
    workers: int,
    checkpoint: Optional[Union[str, CrawlCheckpoint]] = None,
    checkpoint_every: int = 16,
    quarantine=None,
    stage: str = "url_crawl",
    tracer=None,
    on_lane: Optional[Callable[[int, str, List[LinkOutcome]], None]] = None,
    metrics=None,
    stream_capacity: Optional[int] = None,
) -> CrawlResult:
    """Crawl ``links`` on forked worker processes; bit-identical to serial.

    The scheduler dispatches chunks for a sliding *window* of lanes
    (``stream_capacity`` wide, default ``max(2, workers)``): later lanes
    are withheld until earlier ones stream out through ``on_lane``, so
    the number of completed-but-unstreamed lanes is bounded — the
    process-side analogue of the thread executor's
    :class:`~repro.web.parallel.ReorderBuffer` bound.  Idle workers
    steal whatever chunk is next in the shared queue, including the
    split chunks of a hot lane.

    ``metrics`` receives ``crawl.lanes`` (identical to the thread
    executor) plus the executor-shape gauges ``crawl.chunks``,
    ``crawl.steals``, ``crawl.arena_bytes`` and ``crawl.arena_segments``
    — all excluded from deterministic measurement views.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if crawler._policy.retry_budget is not None:
        raise ValueError(
            "a global retry_budget is spent in serial link order and cannot "
            "be decomposed across lanes; use workers=None (serial) or a "
            "policy without retry_budget"
        )
    if "fork" not in get_all_start_methods():
        raise RuntimeError(
            "the process executor requires the fork start method "
            "(workers inherit the crawler and world by memory)"
        )
    tracer = tracer if tracer is not None else NULL_TRACER
    if quarantine is None:
        from ..core.quarantine import Quarantine

        quarantine = Quarantine()
    quarantine_start = len(quarantine.records)

    if checkpoint is None:
        ckpt: Optional[CrawlCheckpoint] = None
    elif isinstance(checkpoint, CrawlCheckpoint):
        ckpt = checkpoint
    else:
        ckpt = CrawlCheckpoint.load(checkpoint)

    base_state = crawler.restore_state(ckpt)
    base_breakers_snapshot = base_state.breakers.snapshot()
    completed = dict(ckpt.completed) if ckpt is not None else None

    chunks, lane_chunk_ids = plan_chunks(
        links,
        base_state=base_state,
        completed=completed,
        policy=crawler._policy,
        workers=workers,
        fault_injector=crawler._internet.fault_injector,
    )
    n_lanes = len(lane_chunk_ids)
    lane_domains = [chunks[ids[0]].domain for ids in lane_chunk_ids]

    if metrics is not None:
        # Same pure value the thread executor records (domain count is a
        # function of the link sequence alone, never of the executor).
        metrics.gauge("crawl.lanes").set(n_lanes)

    progress = [
        _LaneProgress(n_chunks=len(ids)) for ids in lane_chunk_ids
    ]
    window = stream_capacity if stream_capacity is not None else max(2, workers)
    if window < 1:
        raise ValueError("stream_capacity must be >= 1")

    entries_since_save = 0
    arena_bytes = 0
    arena_segments = 0
    held_peak = 0

    def flush_and_save() -> None:
        """Compose base ⊕ committed lane prefixes and save atomically."""
        assert ckpt is not None
        captures: List[_LaneCapture] = []
        for lane in progress:
            if lane.accum is None:
                continue
            captures.append(
                _LaneCapture(
                    stats=lane.accum.stats,
                    breakers=dict(
                        lane.accum.breakers.snapshot()["breakers"]
                    ),
                    clocks=dict(lane.accum.clocks),
                    budget_spent=lane.accum.budget_spent,
                )
            )
        _compose_checkpoint(ckpt, base_state, base_breakers_snapshot, captures)
        ckpt.save()

    def commit_ready(lane_index: int) -> None:
        """Advance one lane's frontier over received chunk payloads."""
        nonlocal entries_since_save
        lane = progress[lane_index]
        while lane.frontier in lane.waiting:
            payload = lane.waiting.pop(lane.frontier)
            state: ShardState = payload["state"]
            if lane.accum is None:
                lane.accum = ShardState(
                    stats=CrawlStats(),
                    breakers=BreakerBoard(
                        failure_threshold=base_state.breakers.failure_threshold,
                        cooldown=base_state.breakers.cooldown,
                    ),
                    clocks={},
                    budget_spent=0,
                    base_clock=base_state.base_clock,
                )
            lane.accum.stats = lane.accum.stats.merge(state.stats)
            lane.accum.breakers = lane.accum.breakers.merge(state.breakers)
            lane.accum.clocks.update(state.clocks)
            lane.accum.budget_spent += state.budget_spent
            for outcome in payload["outcomes"]:
                lane.outcomes.append(outcome)
                if ckpt is not None and outcome.entry is not None:
                    ckpt.completed[outcome.key] = outcome.entry
                    entries_since_save += 1
            lane.wall += payload["wall"]
            lane.pids.append(payload["pid"])
            lane.frontier += 1

    ctx = get_context("fork")
    procs: List[Any] = []
    task_q = None
    result_q = None
    try:
        if chunks:
            # Start the tracker before forking so every worker talks to
            # the same resource-tracker process: the worker's segment
            # registration and the parent's unlink/unregister then pair
            # up, and a SIGKILLed parent still gets its segments
            # reclaimed by the shared tracker.
            resource_tracker.ensure_running()
            task_q = ctx.Queue()
            result_q = ctx.Queue()
            n_procs = max(1, min(workers, len(chunks)))
            procs = [
                ctx.Process(
                    target=_worker_main,
                    args=(crawler, chunks, completed, stage, task_q, result_q),
                    daemon=True,
                    name=f"crawl-proc-{i}",
                )
                for i in range(n_procs)
            ]
            for proc in procs:
                proc.start()

            dispatch_ptr = 0
            release_ptr = 0

            def dispatch_window() -> None:
                nonlocal dispatch_ptr
                while (
                    dispatch_ptr < n_lanes
                    and dispatch_ptr < release_ptr + window
                ):
                    for chunk_id in lane_chunk_ids[dispatch_ptr]:
                        task_q.put(chunk_id)
                    dispatch_ptr += 1

            dispatch_window()
            received = 0
            while received < len(chunks):
                try:
                    kind, chunk_id, pid, payload = result_q.get(
                        timeout=_POLL_SECONDS
                    )
                except queue_mod.Empty:
                    dead = [p for p in procs if p.exitcode not in (None, 0)]
                    if dead:
                        raise RuntimeError(
                            "crawl worker process(es) died: "
                            + ", ".join(
                                f"pid={p.pid} exitcode={p.exitcode}"
                                for p in dead
                            )
                        )
                    if not any(p.is_alive() for p in procs):
                        raise RuntimeError(
                            "all crawl workers exited with results missing"
                        )
                    continue
                if kind == "error":
                    raise payload
                received += 1
                chunk = chunks[chunk_id]
                adopted = adopt_arena(payload["arena"], payload["outcomes"])
                if adopted:
                    arena_bytes += adopted
                    arena_segments += 1
                if payload["memo"] and crawler._ingest_memo is not None:
                    crawler._ingest_memo.preload(payload["memo"])
                payload["pid"] = pid
                with tracer.span(
                    "crawl.chunk",
                    lane=chunk.lane_index,
                    domain=chunk.domain,
                    seq=chunk.seq,
                    pid=pid,
                    n_links=chunk.n_links,
                    wall=payload["wall"],
                ):
                    pass
                lane = progress[chunk.lane_index]
                lane.waiting[chunk.seq] = payload
                commit_ready(chunk.lane_index)
                if (
                    ckpt is not None
                    and entries_since_save >= max(1, checkpoint_every)
                ):
                    entries_since_save = 0
                    flush_and_save()
                    kill_point("crawl.checkpoint.saved")
                held = sum(
                    1 for lane in progress[release_ptr:] if lane.done
                )
                held_peak = max(held_peak, held)
                # The window bounds completed-but-unstreamed lanes the
                # same way the thread executor's reorder buffer does.
                assert held <= window, (
                    f"{held} completed lanes held against a window of "
                    f"{window}"
                )
                while release_ptr < n_lanes and progress[release_ptr].done:
                    lane = progress[release_ptr]
                    if metrics is not None:
                        metrics.histogram("crawl.lane_seconds").observe(
                            lane.wall
                        )
                    if on_lane is not None:
                        on_lane(
                            release_ptr,
                            lane_domains[release_ptr],
                            lane.outcomes,
                        )
                    release_ptr += 1
                    dispatch_window()

            for _ in procs:
                task_q.put(None)
            for proc in procs:
                proc.join(timeout=5.0)
            for proc in procs:  # pragma: no cover - defensive
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
    except BaseException:
        # Leave a resumable checkpoint covering every committed chunk,
        # then tear the pool down and reclaim any unadopted segments.
        if ckpt is not None:
            try:
                flush_and_save()
            except Exception:  # pragma: no cover - best effort
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=1.0)
        if result_q is not None:
            while True:
                try:
                    kind, _, _, payload = result_q.get_nowait()
                except (queue_mod.Empty, OSError, EOFError):
                    break
                if kind == "ok" and payload.get("arena") is not None:
                    _unlink_segment(payload["arena"]["name"])
        raise
    finally:
        for q in (task_q, result_q):
            if q is not None:
                q.close()

    if metrics is not None:
        steals = 0
        for ids, lane in zip(lane_chunk_ids, progress):
            if len(ids) > 1 and lane.pids:
                steals += sum(
                    1 for pid in lane.pids[1:] if pid != lane.pids[0]
                )
        metrics.gauge("crawl.chunks").set(len(chunks))
        metrics.gauge("crawl.steals").set(steals)
        metrics.gauge("crawl.arena_bytes").set(arena_bytes)
        metrics.gauge("crawl.arena_segments").set(arena_segments)
        metrics.gauge("crawl.stream_queue_depth_peak").set(held_peak)

    # One deterministic crash instant between "every chunk committed"
    # and "final checkpoint synced": recovery from a SIGKILL here must
    # replay to bit-identical output (kill-matrix coverage).
    kill_point("crawl.procpool.merge")

    all_outcomes = sorted(
        (outcome for lane in progress for outcome in lane.outcomes),
        key=lambda o: o.index,
    )
    preview_images, pack_images, packs, attempt_logs, quarantined = (
        merge_outcomes(all_outcomes)
    )
    quarantine.records.extend(quarantined)

    merged_state = ShardState(
        stats=base_state.stats,
        breakers=base_state.breakers,
        clocks=dict(base_state.clocks),
        budget_spent=base_state.budget_spent,
        base_clock=base_state.base_clock,
    )
    for lane in progress:
        if lane.accum is None:
            continue
        merged_state.stats = merged_state.stats.merge(lane.accum.stats)
        merged_state.breakers = merged_state.breakers.merge(lane.accum.breakers)
        merged_state.clocks.update(lane.accum.clocks)
        merged_state.budget_spent += lane.accum.budget_spent

    if ckpt is not None:
        Crawler.sync_checkpoint(ckpt, merged_state)
        ckpt.save()

    return CrawlResult(
        preview_images=preview_images,
        pack_images=pack_images,
        packs=packs,
        stats=merged_state.stats,
        attempt_logs=attempt_logs,
        quarantined=list(quarantine.records[quarantine_start:]),
        breaker_summary=merged_state.breakers.as_dict(),
    )
