"""Retry policy engine: backoff with jitter, budgets, circuit breakers.

The crawler treats transient fetch outcomes (timeout, rate limit, 5xx —
see :mod:`repro.web.faults`) as retryable.  This module supplies the
three pieces of the retry discipline:

* :class:`RetryPolicy` — capped exponential backoff with **full jitter**
  (delay ~ ``U(0, min(max_delay, base * 2**attempt))``), a global retry
  *budget* across a crawl, and ``Retry-After`` honouring for rate limits;
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, per domain: after ``failure_threshold`` consecutive transient
  failures the breaker opens and the crawler stops hammering the domain;
  after ``cooldown`` (simulated) seconds a half-open probe is allowed,
  and its outcome closes or re-opens the circuit;
* :class:`BreakerBoard` — the per-domain registry, with snapshot/restore
  hooks so breaker state survives a checkpointed crawl interruption.

There is no wall clock here: the crawler advances a *virtual clock* by
the backoff delays it would have slept, which keeps every timing decision
deterministic and replayable.  For the same reason the jitter variate is
supplied by the caller (derived from a stable per-``(url, attempt)``
hash) instead of a shared RNG stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "BreakerBoard",
    "BreakerState",
    "CircuitBreaker",
    "RetryPolicy",
]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How hard the crawler tries before giving a link up."""

    #: Total fetch attempts per link (1 initial + ``max_attempts - 1`` retries).
    max_attempts: int = 4
    #: First backoff cap, seconds.
    base_delay: float = 0.5
    #: Backoff cap ceiling, seconds.
    max_delay: float = 30.0
    #: Total retries allowed across one crawl; ``None`` means unlimited.
    retry_budget: Optional[int] = None
    #: Use the server's ``Retry-After`` as the delay when provided.
    honor_retry_after: bool = True
    #: Virtual-clock cost charged per fetch attempt, seconds.  This is
    #: what lets open breakers cool down while the crawl moves on.
    attempt_cost: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.attempt_cost < 0:
            raise ValueError("delays must be non-negative")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0 when set")

    def as_dict(self) -> dict:
        """Snapshot-protocol view (manifest / export use)."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "retry_budget": self.retry_budget,
            "honor_retry_after": self.honor_retry_after,
            "attempt_cost": self.attempt_cost,
        }

    def backoff_delay(self, attempt: int, u: float) -> float:
        """Full-jitter backoff for the given zero-based ``attempt``.

        ``u`` is a uniform variate in ``[0, 1)`` supplied by the caller;
        the delay is ``u * min(max_delay, base_delay * 2**attempt)``, so
        it always lies in ``[0, min(max_delay, base_delay * 2**attempt))``.
        """
        if not 0.0 <= u < 1.0:
            raise ValueError("u must be in [0, 1)")
        cap = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        return u * cap


class BreakerState(enum.Enum):
    """Circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Per-domain circuit breaker over a virtual clock.

    Only *transient* failures trip the breaker: a permanent outcome
    (404, ToS takedown, …) proves the host answered and resets the
    consecutive-failure count.
    """

    failure_threshold: int = 5
    cooldown: float = 60.0
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opened_at: Optional[float] = None
    #: Times this breaker tripped open (including re-opens), for stats.
    n_opens: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")

    def allow(self, now: float) -> bool:
        """May a fetch proceed at virtual time ``now``?

        An ``OPEN`` breaker transitions to ``HALF_OPEN`` (and allows one
        probe) once ``cooldown`` seconds have elapsed since it opened.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.opened_at is not None and now - self.opened_at >= self.cooldown:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True  # HALF_OPEN: probes allowed

    def record_success(self) -> None:
        """A fetch got a definitive answer: close the circuit."""
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        """A transient failure at virtual time ``now``."""
        if self.state is BreakerState.HALF_OPEN:
            self._open(now)
            return
        self.consecutive_failures += 1
        if self.state is BreakerState.CLOSED and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self._open(now)

    def _open(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = now
        self.consecutive_failures = 0
        self.n_opens += 1

    # -- checkpoint serialization --------------------------------------
    def to_dict(self) -> dict:
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown": self.cooldown,
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "opened_at": self.opened_at,
            "n_opens": self.n_opens,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CircuitBreaker":
        return cls(
            failure_threshold=int(data["failure_threshold"]),
            cooldown=float(data["cooldown"]),
            state=BreakerState(data["state"]),
            consecutive_failures=int(data["consecutive_failures"]),
            opened_at=None if data["opened_at"] is None else float(data["opened_at"]),
            n_opens=int(data.get("n_opens", 0)),
        )


class BreakerBoard:
    """The per-domain circuit-breaker registry for one crawl."""

    def __init__(self, failure_threshold: int = 5, cooldown: float = 60.0):
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, domain: str) -> CircuitBreaker:
        """The breaker for ``domain``, created closed on first use."""
        breaker = self._breakers.get(domain)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold, cooldown=self.cooldown
            )
            self._breakers[domain] = breaker
        return breaker

    def __iter__(self) -> Iterator[Tuple[str, CircuitBreaker]]:
        return iter(self._breakers.items())

    def __len__(self) -> int:
        return len(self._breakers)

    @property
    def n_open(self) -> int:
        """Breakers currently open."""
        return sum(1 for b in self._breakers.values() if b.state is BreakerState.OPEN)

    @property
    def total_opens(self) -> int:
        """Trip events across all domains (including re-opens)."""
        return sum(b.n_opens for b in self._breakers.values())

    def states(self) -> Dict[str, int]:
        """Breaker count per state name (``closed``/``open``/``half_open``)."""
        counts: Dict[str, int] = {}
        for breaker in self._breakers.values():
            counts[breaker.state.value] = counts.get(breaker.state.value, 0) + 1
        return counts

    def as_dict(self) -> dict:
        """Snapshot-protocol *summary* view (telemetry / manifest use).

        Aggregate counts only — the full per-domain state lives in
        :meth:`snapshot`, which remains the checkpoint serialization.
        """
        return {
            "n_domains": len(self._breakers),
            "n_open": self.n_open,
            "total_opens": self.total_opens,
            "states": dict(sorted(self.states().items())),
        }

    def merge(self, other: "BreakerBoard") -> "BreakerBoard":
        """A new board combining two shards' per-domain breakers.

        Domains are expected to be disjoint (each crawl lane owns every
        breaker of its domain); when both boards carry the same domain
        the *other* board's breaker wins, matching "later shard state
        supersedes earlier".  Insertion order is self's domains followed
        by other's new domains, so merging lanes in lane order preserves
        the serial first-appearance ordering.
        """
        merged = BreakerBoard(
            failure_threshold=self.failure_threshold, cooldown=self.cooldown
        )
        for domain, breaker in self._breakers.items():
            merged._breakers[domain] = breaker
        for domain, breaker in other._breakers.items():
            merged._breakers[domain] = breaker
        return merged

    # -- checkpoint serialization --------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable state of every breaker."""
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown": self.cooldown,
            "breakers": {d: b.to_dict() for d, b in self._breakers.items()},
        }

    @classmethod
    def restore(cls, data: Mapping) -> "BreakerBoard":
        board = cls(
            failure_threshold=int(data.get("failure_threshold", 5)),
            cooldown=float(data.get("cooldown", 60.0)),
        )
        for domain, state in data.get("breakers", {}).items():
            board._breakers[domain] = CircuitBreaker.from_dict(state)
        return board
