"""Registry of hosting services on the simulated internet.

Two families matter to the pipeline (§4.2): *image-sharing* sites host
pack previews and proof-of-earnings screenshots; *cloud-storage* services
host the pack archives themselves.  Each service carries the behavioural
policy knobs the paper observed in the wild: link rot, terms-of-service
takedowns of nudity/copyright material, registration walls that stop the
crawler (Dropbox, Google Drive), and service shutdowns (oron).

Popularity weights are calibrated to the link-share distributions of
Tables 3 and 4 so that the synthetic world reproduces their shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "CLOUD_STORAGE_SERVICES",
    "HostingService",
    "IMAGE_SHARING_SERVICES",
    "ServiceKind",
    "all_services",
    "service_by_domain",
]


class ServiceKind(enum.Enum):
    """Hosting-service family."""

    IMAGE_SHARING = "image_sharing"
    CLOUD_STORAGE = "cloud_storage"


@dataclass(frozen=True, slots=True)
class HostingService:
    """One hosting platform and its behavioural policy."""

    name: str
    domain: str
    kind: ServiceKind
    #: Relative share of links pointing at this service (Tables 3/4 shape).
    weight: float
    #: Probability that a link is dead by crawl time (expired/deleted).
    dead_link_rate: float = 0.25
    #: Probability that nudity-bearing content is removed for ToS breach.
    tos_takedown_rate: float = 0.0
    #: Crawling requires an account; the crawler refuses (§4.2 limitations).
    requires_registration: bool = False
    #: Service no longer exists; every fetch fails.
    defunct: bool = False

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        for rate in (self.dead_link_rate, self.tos_takedown_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be within [0, 1]")


# ----------------------------------------------------------------------
# Image-sharing sites (Table 3).  Weights are the paper's link counts.
# Preview hosts forbid nudity in their ToS (§4.2) — non-zero takedowns.
# ----------------------------------------------------------------------
IMAGE_SHARING_SERVICES: Tuple[HostingService, ...] = (
    HostingService("imgur", "imgur.com", ServiceKind.IMAGE_SHARING, 3297, 0.13, 0.30),
    HostingService("Gyazo", "gyazo.com", ServiceKind.IMAGE_SHARING, 1006, 0.14, 0.26),
    HostingService("ImageShack", "imageshack.us", ServiceKind.IMAGE_SHARING, 679, 0.22, 0.22),
    HostingService("prnt", "prnt.sc", ServiceKind.IMAGE_SHARING, 383, 0.12, 0.20),
    HostingService("photobucket", "photobucket.com", ServiceKind.IMAGE_SHARING, 311, 0.28, 0.30),
    HostingService("imagetwist", "imagetwist.com", ServiceKind.IMAGE_SHARING, 105, 0.18, 0.12),
    HostingService("imagezilla", "imagezilla.net", ServiceKind.IMAGE_SHARING, 97, 0.20, 0.12),
    HostingService("minus", "minus.com", ServiceKind.IMAGE_SHARING, 51, 0.60, 0.05, defunct=True),
    HostingService("postimage", "postimage.org", ServiceKind.IMAGE_SHARING, 47, 0.15, 0.15),
    HostingService("imagebam", "imagebam.com", ServiceKind.IMAGE_SHARING, 44, 0.16, 0.15),
    # The long tail the paper aggregates as "Others" (700 links).
    HostingService("picpaste", "picpaste.de", ServiceKind.IMAGE_SHARING, 140, 0.22, 0.10),
    HostingService("tinypic", "tinypic.com", ServiceKind.IMAGE_SHARING, 130, 0.55, 0.10, defunct=True),
    HostingService("imgbox", "imgbox.com", ServiceKind.IMAGE_SHARING, 115, 0.15, 0.12),
    HostingService("lightshot", "lightshot.cc", ServiceKind.IMAGE_SHARING, 100, 0.14, 0.12),
    HostingService("imagevenue", "imagevenue.com", ServiceKind.IMAGE_SHARING, 90, 0.20, 0.10),
    HostingService("pixhost", "pixhost.to", ServiceKind.IMAGE_SHARING, 75, 0.16, 0.10),
    HostingService("imgsafe", "imgsafe.org", ServiceKind.IMAGE_SHARING, 50, 0.22, 0.10),
)

# ----------------------------------------------------------------------
# Cloud-storage services (Table 4).  Pack hosts: copyright ToS, link
# expiry on free tiers, registration walls.
# ----------------------------------------------------------------------
CLOUD_STORAGE_SERVICES: Tuple[HostingService, ...] = (
    HostingService("MediaFire", "mediafire.com", ServiceKind.CLOUD_STORAGE, 892, 0.14, 0.05),
    HostingService("mega", "mega.nz", ServiceKind.CLOUD_STORAGE, 284, 0.12, 0.06),
    HostingService(
        "Dropbox", "dropbox.com", ServiceKind.CLOUD_STORAGE, 130, 0.12, 0.05,
        requires_registration=True,
    ),
    HostingService("oron", "oron.com", ServiceKind.CLOUD_STORAGE, 95, 0.95, 0.0, defunct=True),
    HostingService("depositfiles", "depositfiles.com", ServiceKind.CLOUD_STORAGE, 46, 0.30, 0.05),
    HostingService("filefactory", "filefactory.com", ServiceKind.CLOUD_STORAGE, 37, 0.28, 0.05),
    HostingService(
        "drive.google", "drive.google.com", ServiceKind.CLOUD_STORAGE, 31, 0.12, 0.08,
        requires_registration=True,
    ),
    HostingService("ge.tt", "ge.tt", ServiceKind.CLOUD_STORAGE, 28, 0.35, 0.05),
    HostingService("zippyshare", "zippyshare.com", ServiceKind.CLOUD_STORAGE, 25, 0.25, 0.05),
    HostingService("filedropper", "filedropper.com", ServiceKind.CLOUD_STORAGE, 24, 0.30, 0.05),
    # "Others" (94 links).
    HostingService("sendspace", "sendspace.com", ServiceKind.CLOUD_STORAGE, 40, 0.28, 0.05),
    HostingService("4shared", "4shared.com", ServiceKind.CLOUD_STORAGE, 30, 0.30, 0.06),
    HostingService("uploaded", "uploaded.net", ServiceKind.CLOUD_STORAGE, 24, 0.32, 0.05),
)

_BY_DOMAIN: Dict[str, HostingService] = {
    service.domain: service
    for service in IMAGE_SHARING_SERVICES + CLOUD_STORAGE_SERVICES
}


def all_services(kind: ServiceKind | None = None) -> List[HostingService]:
    """All registered services, optionally filtered by kind."""
    services = list(IMAGE_SHARING_SERVICES + CLOUD_STORAGE_SERVICES)
    if kind is None:
        return services
    return [service for service in services if service.kind is kind]


def service_by_domain(domain: str) -> HostingService | None:
    """Look up a hosting service by its (full) domain, or ``None``."""
    return _BY_DOMAIN.get(domain.lower())
