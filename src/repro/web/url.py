"""URL parsing, normalisation and extraction.

The pipeline extracts URLs from post bodies with regular expressions
(§4.2) and reasons about them by domain.  This module provides the URL
value type used across the simulated internet, plus the extraction regex.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "Url",
    "deobfuscate_text",
    "extract_urls",
    "normalize_url",
    "obfuscate_url",
    "registrable_domain",
]

_URL_PATTERN = re.compile(
    r"""(?:https?://)            # scheme
        (?:www\.)?               # optional www
        ([a-zA-Z0-9][a-zA-Z0-9.\-]*\.[a-zA-Z]{2,})  # host
        (/[^\s<>"'\]\)]*)?       # optional path
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Url:
    """A normalised URL: lowercase host, path as given (no query split)."""

    host: str
    path: str = "/"

    def __post_init__(self) -> None:
        if not self.host or "." not in self.host:
            raise ValueError(f"invalid host {self.host!r}")

    def __str__(self) -> str:
        return f"https://{self.host}{self.path}"

    @property
    def domain(self) -> str:
        """The registrable domain (last two labels; heuristic suffices here)."""
        return registrable_domain(self.host)


def registrable_domain(host: str) -> str:
    """Collapse a host to its registrable domain.

    ``drive.google.com`` is kept as ``drive.google`` style special cases
    are *not* applied — the paper's tables treat e.g. ``drive.google`` as
    its own service, which we preserve via the service registry instead.
    """
    labels = host.lower().split(".")
    if len(labels) <= 2:
        return host.lower()
    return ".".join(labels[-2:])


def normalize_url(raw: str) -> Optional[Url]:
    """Parse a raw URL string into a :class:`Url`, or ``None`` if invalid."""
    match = _URL_PATTERN.fullmatch(raw.strip())
    if match is None:
        return None
    host = match.group(1).lower()
    path = match.group(2) or "/"
    return Url(host=host, path=path)


#: De-fanging styles drift's obfuscation channel writes into posts.
#: Each produces text :data:`_URL_PATTERN` cannot match; all are exactly
#: inverted by :func:`deobfuscate_text`.
OBFUSCATION_STYLES = ("hxxp", "bracket_dot", "paren_dot")


def obfuscate_url(url: "Url", style: str) -> str:
    """Render ``url`` in a de-fanged form the extraction regex misses.

    >>> obfuscate_url(Url("imgur.com", "/abc"), "hxxp")
    'hxxps://imgur.com/abc'
    >>> obfuscate_url(Url("imgur.com", "/abc"), "bracket_dot")
    'https://imgur[.]com/abc'
    """
    if style == "hxxp":
        return f"hxxps://{url.host}{url.path}"
    if style == "bracket_dot":
        return f"https://{url.host.replace('.', '[.]')}{url.path}"
    if style == "paren_dot":
        return f"https://{url.host.replace('.', '(dot)')}{url.path}"
    raise ValueError(f"unknown obfuscation style {style!r} (known: {OBFUSCATION_STYLES})")


def deobfuscate_text(text: str) -> str:
    """Normalise de-fanged URL spellings back to extractable form.

    The inverse of every :func:`obfuscate_url` style; safe to run over
    arbitrary post text (plain URLs pass through unchanged).

    >>> deobfuscate_text("get it at hxxps://imgur[.]com/abc now")
    'get it at https://imgur.com/abc now'
    """
    return (
        text.replace("hxxp://", "http://")
        .replace("hxxps://", "https://")
        .replace("[.]", ".")
        .replace("(dot)", ".")
    )


def extract_urls(text: str) -> List[Url]:
    """Extract every URL from free text, in order of appearance.

    Duplicate occurrences are preserved — the measurement counts *links*,
    not distinct targets (deduplication happens downstream where the
    paper deduplicates).
    """
    urls: List[Url] = []
    for match in _URL_PATTERN.finditer(text):
        host = match.group(1).lower()
        path = match.group(2) or "/"
        try:
            urls.append(Url(host=host, path=path))
        except ValueError:  # pragma: no cover - regex prevents this
            continue
    return urls
