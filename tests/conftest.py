"""Shared fixtures: one small synthetic world and one pipeline run.

World construction and the full pipeline are the expensive pieces, so
they are session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import build_world, run_pipeline
from repro.synth import WorldConfig

#: Scale used by the shared world: large enough that every pipeline stage
#: has material to work with, small enough for quick test runs.
TEST_SCALE = 0.02
TEST_SEED = 7

#: CI chaos leg: set REPRO_TEST_PAYLOAD_PROFILE=hostile (or dirty) to run
#: the whole integration suite against a corrupting internet.  The
#: record-level quarantine boundary is expected to absorb every poison
#: payload, so the suite must still pass.
PAYLOAD_PROFILE = os.environ.get("REPRO_TEST_PAYLOAD_PROFILE") or None

#: CI parallel leg: set REPRO_TEST_CRAWL_WORKERS=4 to run every shared
#: pipeline crawl through the sharded executor with crawl→vision
#: streaming (bit-identical to serial, so the whole suite must pass
#: unchanged for any worker count).
_workers = os.environ.get("REPRO_TEST_CRAWL_WORKERS")
CRAWL_WORKERS = int(_workers) if _workers else None

#: CI multi-core leg: set REPRO_TEST_CRAWL_EXECUTOR=process (with
#: REPRO_TEST_CRAWL_WORKERS=N) to back every shared pipeline crawl with
#: the fork-based process pool instead of worker threads — also
#: bit-identical to serial, so the suite must pass unchanged.
CRAWL_EXECUTOR = os.environ.get("REPRO_TEST_CRAWL_EXECUTOR") or "thread"


@pytest.fixture(scope="session")
def world():
    """A seeded synthetic world shared by all integration-style tests."""
    return build_world(
        WorldConfig(
            seed=TEST_SEED,
            scale=TEST_SCALE,
            # Elevated abuse rates so the §4.3 stage has matches to find
            # even in a small world.
            underage_rate=0.30,
            hashlist_rate=0.5,
            payload_profile=PAYLOAD_PROFILE,
            crawl_workers=CRAWL_WORKERS,
            crawl_executor=CRAWL_EXECUTOR,
        )
    )


@pytest.fixture(scope="session")
def report(world):
    """One full pipeline run over the shared world."""
    return run_pipeline(world)


@pytest.fixture()
def rng():
    """A fresh deterministic generator for unit tests."""
    return np.random.default_rng(12345)
