"""The atomic write helper: either the old artifact or the new one.

Every on-disk artifact leaves the process through
:func:`repro.atomicio.atomic_write_text`; these tests pin its contract —
round-trip fidelity, temp-file hygiene, and (via the in-process chaos
monkey at the ``artifact.*`` kill sites) the either-old-or-new property
when the process dies between the temp write and the rename.
"""

import json
from pathlib import Path

import pytest

from repro.atomicio import atomic_write_json, atomic_write_text, fsync_dir
from repro.chaos import ChaosCrash, ChaosMonkey, install, uninstall


class TestAtomicWriteText:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "artifact.txt"
        returned = atomic_write_text(target, "hello\n")
        assert returned == target
        assert target.read_text() == "hello\n"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_residue_on_success(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "x")
        atomic_write_text(target, "y", durable=False)
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]

    def test_non_durable_still_atomic(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "content", durable=False)
        assert target.read_text() == "content"

    def test_accepts_str_paths(self, tmp_path):
        target = str(tmp_path / "artifact.txt")
        assert atomic_write_text(target, "s") == Path(target)


class TestAtomicWriteJson:
    def test_round_trip_sorted(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(target, {"b": 2, "a": 1})
        text = target.read_text()
        assert text == '{"a": 1, "b": 2}\n'
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_dumps_kwargs_pass_through(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(target, {"a": 1}, indent=2)
        assert target.read_text() == '{\n  "a": 1\n}\n'


class TestCrashWindows:
    """Die inside the write; the previous artifact must survive whole."""

    def teardown_method(self):
        uninstall()

    def test_crash_before_replace_keeps_old_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "committed")
        install(ChaosMonkey("artifact.tmp_written", action="raise", hit=1))
        with pytest.raises(ChaosCrash):
            atomic_write_text(target, "never-lands")
        uninstall()
        assert target.read_text() == "committed"
        # The residue is the identifiable temp sibling, nothing else.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "artifact.txt", "artifact.txt.tmp",
        ]
        # The next successful write overwrites the residue.
        atomic_write_text(target, "recovered")
        assert target.read_text() == "recovered"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]

    def test_crash_before_replace_with_no_previous_artifact(self, tmp_path):
        target = tmp_path / "artifact.txt"
        install(ChaosMonkey("artifact.tmp_written", action="raise", hit=1))
        with pytest.raises(ChaosCrash):
            atomic_write_text(target, "never-lands")
        assert not target.exists()

    def test_crash_after_replace_keeps_new_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "old")
        install(ChaosMonkey("artifact.replaced", action="raise", hit=1))
        with pytest.raises(ChaosCrash):
            atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_content_is_never_torn(self, tmp_path):
        """At every crash window the artifact is one complete version."""
        target = tmp_path / "artifact.json"
        atomic_write_json(target, {"version": 1})
        for site in ("artifact.tmp_written", "artifact.replaced"):
            install(ChaosMonkey(site, action="raise", hit=1))
            with pytest.raises(ChaosCrash):
                atomic_write_json(target, {"version": 2})
            uninstall()
            assert json.loads(target.read_text()) in (
                {"version": 1}, {"version": 2},
            )


class TestFsyncDir:
    def test_tolerates_any_directory(self, tmp_path):
        fsync_dir(tmp_path)

    def test_tolerates_missing_directory(self, tmp_path):
        fsync_dir(tmp_path / "does-not-exist")
