"""The crash-consistency kill matrix (DESIGN.md §13).

The tentpole invariant of the chaos harness: for every registered kill
site, SIGKILL-ing the pipeline subprocess at that site, then recovering
and re-running, converges **bit-identically** with a run that was never
killed — same crawl digest, same quarantine ledger, same measurement
view.  The crash site is chosen by pure ``(seed, site)`` hashing
(:func:`repro.chaos.chosen_hit`), so every crash here is reproducible.

Two legs:

* ``--mode store`` — an incremental epoch is killed mid-transaction;
  reopening the store must pass the integrity probe, the watermark must
  sit exactly at the previous epoch (or the new one, iff the kill landed
  *after* COMMIT), and re-running the epoch must equal a cold run.
* ``--mode crawl`` — a checkpointed crawl is killed around checkpoint
  saves and atomic replaces; the checkpoint file must stay loadable
  (never torn) and the resumed run must equal an uninterrupted one.

Set ``REPRO_CHAOS_TEST_WORKERS=<n>`` to push the whole matrix through
the sharded parallel crawler (the CI chaos leg runs 1 and 4).
"""

import json
import os
import re
import shutil
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chaos import (
    ENV_ACTION,
    ENV_HIT,
    ENV_SEED,
    ENV_SITE,
    KILL_SITES,
    ChaosCrash,
    ChaosMonkey,
    chosen_hit,
    install,
    install_from_env,
    kill_point,
    uninstall,
)
from repro.store import RunStore, verify_store
from repro.web.checkpoint import CrawlCheckpoint

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"

SEED = 7
SCALE = 0.005

#: Sites inside the store's epoch transaction fire once per epoch, and
#: the process pool's merge site fires once per crawl, so their
#: deterministic hit must be 1; the other crawl/artifact sites fire on
#: every periodic checkpoint save and can land anywhere in 1..3.
SITE_MAX_HITS = {
    site: 1 if site.startswith("store.") or site == "crawl.procpool.merge"
    else 3
    for site in KILL_SITES
}

STORE_SITES = tuple(s for s in KILL_SITES if s.startswith("store."))
CRAWL_SITES = tuple(s for s in KILL_SITES if not s.startswith("store."))


def site_extra_args(site):
    """Per-site driver arguments: the procpool merge site only exists
    when the crawl runs on the process executor."""
    if site == "crawl.procpool.merge":
        extra = ["--executor", "process"]
        if not WORKERS:
            extra += ["--workers", "2"]
        return extra
    return []

#: Optional worker-count override so CI can push the same matrix
#: through the sharded parallel crawler.
WORKERS = os.environ.get("REPRO_CHAOS_TEST_WORKERS")


def driver_cmd(*args):
    cmd = [sys.executable, "-m", "repro.chaos.driver", "--seed", str(SEED),
           "--scale", str(SCALE), *args]
    if WORKERS:
        cmd += ["--workers", WORKERS]
    return cmd


def run_driver(args, chaos_site=None, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_SITE, None)
    if chaos_site is not None:
        env[ENV_SITE] = chaos_site
        env[ENV_SEED] = str(SEED)
        env[ENV_HIT] = str(chosen_hit(SEED, chaos_site, SITE_MAX_HITS[chaos_site]))
    return subprocess.run(
        driver_cmd(*args),
        env=env,
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=300,
    )


def driver_json(proc):
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def copy_store(src: Path, dst: Path) -> Path:
    shutil.copy(src, dst)
    for sidecar in ("-wal", "-shm"):
        side = Path(str(src) + sidecar)
        if side.exists():
            shutil.copy(side, Path(str(dst) + sidecar))
    return dst


@pytest.fixture(scope="module")
def cold_store_json(tmp_path_factory):
    """One uninterrupted cold run over the epoch-2 union."""
    path = tmp_path_factory.mktemp("chaos-cold") / "cold.sqlite"
    proc = run_driver(["--mode", "store", "--store", str(path),
                       "--epoch", "2", "--epoch-total", "2"])
    return driver_json(proc)


@pytest.fixture(scope="module")
def epoch1_store(tmp_path_factory):
    """A cleanly committed epoch-1 store the kill tests copy from."""
    path = tmp_path_factory.mktemp("chaos-warm") / "warm.sqlite"
    proc = run_driver(["--mode", "store", "--store", str(path),
                       "--epoch", "1", "--epoch-total", "2"])
    driver_json(proc)
    return path


@pytest.fixture(scope="module")
def cold_crawl_json(tmp_path_factory):
    """An uninterrupted, checkpoint-free crawl run."""
    proc = run_driver(["--mode", "crawl"],
                      cwd=tmp_path_factory.mktemp("chaos-crawl-cold"))
    return driver_json(proc)


class TestStoreKillMatrix:
    """SIGKILL inside the epoch transaction; recover; converge."""

    @pytest.mark.parametrize("site", STORE_SITES)
    def test_kill_recover_rerun_equals_cold(
        self, tmp_path, site, epoch1_store, cold_store_json
    ):
        store_path = copy_store(epoch1_store, tmp_path / "killed.sqlite")
        epoch2 = ["--mode", "store", "--store", str(store_path),
                  "--epoch", "2", "--epoch-total", "2"]

        killed = run_driver(epoch2, chaos_site=site)
        assert killed.returncode == -signal.SIGKILL, (
            f"expected SIGKILL death at {site}, got rc={killed.returncode}: "
            f"{killed.stderr}"
        )

        # The store must reopen clean: integrity probe passes, and the
        # watermark sits at a whole epoch — 1 unless the kill landed
        # after COMMIT, in which case epoch 2 is durably committed.
        report = verify_store(store_path)
        pipeline_epoch = report.watermarks.get("pipeline", {}).get("epoch")
        if site == "store.commit.after":
            assert pipeline_epoch == 2
        else:
            assert pipeline_epoch == 1, (
                f"kill at {site} left a partial watermark: {report.watermarks}"
            )

        recovered = driver_json(run_driver(epoch2))
        assert recovered["crawl_digest"] == cold_store_json["crawl_digest"]
        assert recovered["quarantine"] == cold_store_json["quarantine"]
        assert recovered["measurement"] == cold_store_json["measurement"]

    def test_kill_mid_first_epoch_rolls_back_to_empty(self, tmp_path, cold_store_json):
        """With no committed prefix, death mid-epoch leaves a virgin store."""
        store_path = tmp_path / "virgin.sqlite"
        args = ["--mode", "store", "--store", str(store_path),
                "--epoch", "1", "--epoch-total", "2"]
        killed = run_driver(args, chaos_site="store.commit.before")
        assert killed.returncode == -signal.SIGKILL

        with RunStore(store_path) as store:
            assert store.watermark("pipeline") is None
            assert store.runs() == []

        driver_json(run_driver(args))
        recovered = driver_json(run_driver(
            ["--mode", "store", "--store", str(store_path),
             "--epoch", "2", "--epoch-total", "2"]))
        assert recovered["crawl_digest"] == cold_store_json["crawl_digest"]
        assert recovered["measurement"] == cold_store_json["measurement"]


class TestCrawlKillMatrix:
    """SIGKILL around checkpoint saves; resume; converge."""

    @pytest.mark.parametrize("site", CRAWL_SITES)
    def test_kill_resume_equals_uninterrupted(self, tmp_path, site, cold_crawl_json):
        ckpt = tmp_path / "crawl.checkpoint.json"
        args = ["--mode", "crawl", "--checkpoint", str(ckpt)]
        args += site_extra_args(site)

        killed = run_driver(args, chaos_site=site, cwd=tmp_path)
        assert killed.returncode == -signal.SIGKILL, (
            f"expected SIGKILL death at {site}, got rc={killed.returncode}: "
            f"{killed.stderr}"
        )

        # Whatever instant the process died at, the checkpoint is either
        # absent or a complete, loadable snapshot — never torn.
        CrawlCheckpoint.load(ckpt)

        resumed = driver_json(run_driver(args, cwd=tmp_path))
        assert resumed["crawl_digest"] == cold_crawl_json["crawl_digest"]
        assert resumed["quarantine"] == cold_crawl_json["quarantine"]
        assert resumed["measurement"] == cold_crawl_json["measurement"]


class TestKillSiteRegistry:
    def test_registry_matches_instrumented_sites(self):
        """Every kill_point() call site is registered, and vice versa."""
        pattern = re.compile(r"kill_point\(\s*\"([^\"]+)\"")
        instrumented = set()
        for path in sorted((SRC_DIR / "repro").rglob("*.py")):
            instrumented.update(pattern.findall(path.read_text(encoding="utf-8")))
        assert instrumented == set(KILL_SITES)

    def test_sites_are_unique_and_namespaced(self):
        assert len(set(KILL_SITES)) == len(KILL_SITES)
        assert all("." in site for site in KILL_SITES)


class TestChosenHit:
    def test_pure_function_of_seed_and_site(self):
        for seed in (0, 7, 123456):
            for site in KILL_SITES:
                first = chosen_hit(seed, site)
                assert first == chosen_hit(seed, site)
                assert 1 <= first <= 3
                assert chosen_hit(seed, site, 1) == 1

    def test_spreads_across_hits(self):
        hits = {chosen_hit(seed, "crawl.checkpoint.saved") for seed in range(64)}
        assert hits == {1, 2, 3}


class TestChaosMonkey:
    def teardown_method(self):
        uninstall()

    def test_fires_once_at_target_hit(self):
        monkey = install(ChaosMonkey("store.commit.before", action="raise", hit=2))
        kill_point("store.commit.before")  # hit 1: survives
        with pytest.raises(ChaosCrash):
            kill_point("store.commit.before")  # hit 2: fires
        kill_point("store.commit.before")  # hit 3: spent, survives
        assert monkey.fired

    def test_other_sites_do_not_trip_it(self):
        install(ChaosMonkey("store.commit.before", action="raise", hit=1))
        kill_point("crawl.checkpoint.saved")
        kill_point("artifact.replaced")

    def test_uninstalled_kill_point_is_inert(self):
        uninstall()
        kill_point("store.commit.before")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ChaosMonkey("store.commit.before", action="explode")


class TestInstallFromEnv:
    def teardown_method(self):
        uninstall()

    def test_absent_env_installs_nothing(self):
        assert install_from_env({}) is None

    def test_unregistered_site_rejected(self):
        with pytest.raises(ValueError):
            install_from_env({ENV_SITE: "no.such.site"})

    def test_full_env_round_trip(self):
        monkey = install_from_env({
            ENV_SITE: "store.commit.before",
            ENV_SEED: "9",
            ENV_ACTION: "raise",
            ENV_HIT: "2",
        })
        assert monkey is not None
        assert monkey.site == "store.commit.before"
        assert monkey.action == "raise"
        assert monkey.target_hit == 2

    def test_hit_defaults_to_chosen_hit(self):
        monkey = install_from_env({
            ENV_SITE: "crawl.checkpoint.saved",
            ENV_SEED: "9",
            ENV_ACTION: "raise",
        })
        assert monkey.target_hit == chosen_hit(9, "crawl.checkpoint.saved")
