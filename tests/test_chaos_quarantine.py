"""Chaos suite: the record-level fault-isolation invariant.

The contract under test (DESIGN.md §8): under *any* corrupt-payload
profile,

1. a run completes with **zero stage failures** attributable to payload
   corruption — poison dies at record boundaries, never stage or
   pipeline boundaries;
2. the quarantine ledger accounts for **exactly** the injected
   corruption events (nothing lost, nothing double-counted);
3. every *clean* record's output — content digests, NSFV verdicts,
   reverse-search outcomes — is **bit-identical** to the corruption-free
   run on the same seed (corruption wraps fetched views; it never
   mutates hosted content or bleeds into neighbouring records).
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_world, run_pipeline
from repro.core.quarantine import Quarantine
from repro.media.image import ImageKind, SyntheticImage, sample_latent
from repro.media.pack import Pack
from repro.media.validate import (
    AbsurdDimensionError,
    DecoyPayloadError,
    EmptyPayloadError,
    NonFinitePixelError,
    TruncatedRasterError,
    WrongDtypeError,
    WrongShapeError,
    validate_raster,
)
from repro.web.crawler import Crawler, LinkRecord
from repro.web.internet import FetchStatus, SimulatedInternet
from repro.web.payload_faults import (
    CORRUPTION_KINDS,
    PayloadFaultInjector,
    PayloadFaultProfile,
    PayloadFaultSpec,
    corrupt_raster,
    payload_profile,
)
from repro.web.sites import HostingService, ServiceKind

#: Which taxonomy class each corruption mode must map onto.  Exhaustive:
#: a corruption kind without a detection class would silently break the
#: injected == quarantined invariant.
EXPECTED_ERROR = {
    "truncated": TruncatedRasterError,
    "nan_pixels": NonFinitePixelError,
    "inf_pixels": NonFinitePixelError,
    "grayscale_2d": WrongShapeError,
    "rgba": WrongShapeError,
    "uint8": WrongDtypeError,
    "zero_byte": EmptyPayloadError,
    "absurd_dims": AbsurdDimensionError,
    "decoy_bytes": DecoyPayloadError,
}


class TestCorruptionAlwaysDetected:
    def test_mapping_is_exhaustive(self):
        assert set(EXPECTED_ERROR) == set(CORRUPTION_KINDS)

    @settings(max_examples=150, deadline=None)
    @given(
        kind=st.sampled_from(CORRUPTION_KINDS),
        height=st.integers(8, 64),
        width=st.integers(8, 64),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_every_corruption_fails_validation_with_typed_error(
        self, kind, height, width, seed
    ):
        """For ANY clean raster and ANY corruption draw, validation raises
        exactly the taxonomy class for that corruption mode."""
        raster = np.random.default_rng(seed).random((height, width, 3))
        payload = corrupt_raster(raster, kind, np.random.default_rng(seed))
        with pytest.raises(EXPECTED_ERROR[kind]):
            validate_raster(payload)


# ----------------------------------------------------------------------
# Crawler-level invariant on a hand-built internet
# ----------------------------------------------------------------------

IMG_HOST = HostingService(
    "testimg", "testimg.example", ServiceKind.IMAGE_SHARING, 1.0,
    dead_link_rate=0.0, tos_takedown_rate=0.0,
)
PACK_HOST = HostingService(
    "testpack", "testpack.example", ServiceKind.CLOUD_STORAGE, 1.0,
    dead_link_rate=0.0, tos_takedown_rate=0.0,
)


def build_tiny_internet(n_previews=40, n_packs=6, pack_size=5):
    """An internet where every link is alive, so corruption is the only
    hazard; returns (internet, links)."""
    from datetime import datetime

    internet = SimulatedInternet(seed=11)
    rng = np.random.default_rng(11)
    links = []
    uploaded = datetime(2018, 6, 1)
    for i in range(n_previews):
        image = SyntheticImage(i, sample_latent(rng, ImageKind.MODEL_DRESSED))
        url = internet.host_on_service(IMG_HOST, image, uploaded, contains_nudity=False)
        links.append(LinkRecord(url=url, link_kind="preview"))
    for p in range(n_packs):
        images = [
            SyntheticImage(1000 + p * pack_size + j, sample_latent(rng, ImageKind.MODEL_DRESSED))
            for j in range(pack_size)
        ]
        pack = Pack(pack_id=p, model_id=p, images=images)
        url = internet.host_on_service(PACK_HOST, pack, uploaded, contains_nudity=False)
        links.append(LinkRecord(url=url, link_kind="pack"))
    return internet, links


class TestCrawlerInvariant:
    def test_injected_equals_quarantined_and_clean_bit_identical(self):
        baseline_internet, links = build_tiny_internet()
        baseline = Crawler(baseline_internet).crawl(links)
        assert baseline.n_quarantined == 0

        corrupt_internet, links2 = build_tiny_internet()
        injector = PayloadFaultInjector(payload_profile("hostile"), seed=23)
        corrupt_internet.set_payload_injector(injector)
        ledger = Quarantine()
        result = Crawler(corrupt_internet).crawl(links2, quarantine=ledger)

        # the hostile profile actually fired on this world
        assert injector.n_injected > 0
        # 1:1 accounting — every corruption event is one ledger record
        assert len(ledger) == injector.n_injected
        assert result.quarantined == ledger.records
        # no corrupt digest ever enters the result
        assert all(c.digest for c in result.all_images)

        # clean previews: byte-identical to the baseline minus the
        # quarantined URLs, in crawl order
        quarantined_urls = ledger.refs("url_crawl")
        expected = [
            c.digest
            for c in baseline.preview_images
            if str(c.link.url) not in quarantined_urls
        ]
        assert [c.digest for c in result.preview_images] == expected

        # clean pack members: a sub-multiset of the baseline's
        base_counts = Counter(c.digest for c in baseline.pack_images)
        for digest, count in Counter(c.digest for c in result.pack_images).items():
            assert count <= base_counts[digest]

        # packs with excised members carry only their clean members
        by_id = {pack.pack_id: pack for pack in result.packs}
        member_digests = {c.digest for c in result.pack_images}
        for pack in by_id.values():
            for image in pack.images:
                pixels = image.pixels
                assert validate_raster(pixels) is pixels

    def test_full_corruption_never_aborts_the_crawl(self):
        internet, links = build_tiny_internet(n_previews=20, n_packs=3)
        internet.set_payload_injector(
            PayloadFaultInjector(
                PayloadFaultProfile("all", PayloadFaultSpec(corrupt_rate=1.0)),
                seed=1,
            )
        )
        result = Crawler(internet).crawl(links)
        assert result.preview_images == []
        assert result.pack_images == []
        assert result.packs == []
        assert result.n_quarantined == 20 + 3 * 5
        # link accounting is unaffected: fetches still succeeded
        assert result.stats.count(FetchStatus.OK) == len(links)

    def test_unexpected_resource_is_quarantined_not_raised(self):
        internet, links = build_tiny_internet(n_previews=2, n_packs=0)
        hosted = internet.hosted(links[0].url)
        hosted.resource = {"not": "an image"}
        result = Crawler(internet).crawl(links)
        assert len(result.preview_images) == 1
        assert result.n_quarantined == 1
        record = result.quarantined[0]
        assert record.error_type == "UnexpectedResourceError"
        assert "dict" in record.message

    def test_checkpoint_replay_rederives_the_ledger(self, tmp_path):
        """A resumed crawl's quarantine ledger is byte-identical to an
        uninterrupted one — corruption is keyed on the URL alone."""
        def corrupting_internet():
            internet, links = build_tiny_internet()
            internet.set_payload_injector(
                PayloadFaultInjector(payload_profile("hostile"), seed=23)
            )
            return internet, links

        internet, links = corrupting_internet()
        uninterrupted = Crawler(internet).crawl(links)

        ckpt = str(tmp_path / "crawl.json")
        internet2, links2 = corrupting_internet()
        first = Crawler(internet2).crawl(links2, checkpoint=ckpt)
        # every link is now settled; a rerun replays all outcomes
        internet3, links3 = corrupting_internet()
        replayed = Crawler(internet3).crawl(links3, checkpoint=ckpt)

        assert first.digest() == uninterrupted.digest()
        assert replayed.digest() == uninterrupted.digest()
        assert [r.summary() for r in replayed.quarantined] == [
            r.summary() for r in uninterrupted.quarantined
        ]


# ----------------------------------------------------------------------
# Full-pipeline invariant across profiles
# ----------------------------------------------------------------------

WORLD_KW = dict(
    seed=3, scale=0.006, with_other_activity=False,
    underage_rate=0.30, hashlist_rate=0.5,
)


@pytest.fixture(scope="module")
def profile_runs():
    runs = {}
    for profile in (None, "dirty", "hostile"):
        world = build_world(payload_profile=profile, **WORLD_KW)
        report = run_pipeline(world, annotate_n=50, strict=False)
        runs[profile] = (world, report)
    return runs


@pytest.mark.slow
class TestPipelineInvariant:
    def test_none_profile_injects_nothing(self):
        world = build_world(payload_profile="none", **WORLD_KW)
        report = run_pipeline(world, annotate_n=50)
        assert world.internet.payload_injector.n_injected == 0
        assert report.n_quarantined == 0

    @pytest.mark.parametrize("profile", ["dirty", "hostile"])
    def test_completes_with_zero_stage_failures(self, profile_runs, profile):
        _, report = profile_runs[profile]
        assert not report.degraded
        assert report.stage_failures == []
        assert {o.status for o in report.stage_outcomes} == {"ok"}

    @pytest.mark.parametrize("profile", ["dirty", "hostile"])
    def test_ledger_matches_injected_counts(self, profile_runs, profile):
        world, report = profile_runs[profile]
        injector = world.internet.payload_injector
        assert injector.n_injected > 0
        assert report.n_quarantined == injector.n_injected
        assert sum(report.quarantine.by_error().values()) == injector.n_injected

    @pytest.mark.parametrize("profile", ["dirty", "hostile"])
    def test_clean_records_bit_identical_to_baseline(self, profile_runs, profile):
        _, base = profile_runs[None]
        _, run = profile_runs[profile]

        # -- crawl: clean previews are the baseline's, minus quarantined
        # URLs, in identical order with identical digests ---------------
        quarantined_urls = run.quarantine.refs("url_crawl")
        expected = [
            c.digest
            for c in base.crawl.preview_images
            if str(c.link.url) not in quarantined_urls
        ]
        assert [c.digest for c in run.crawl.preview_images] == expected

        # -- crawl: clean pack members are a sub-multiset of baseline ---
        base_counts = Counter(c.digest for c in base.crawl.pack_images)
        for digest, count in Counter(c.digest for c in run.crawl.pack_images).items():
            assert count <= base_counts[digest]

        # -- abuse: matches are exactly the baseline matches that
        # survived the crawl --------------------------------------------
        run_digests = {c.digest for c in run.crawl.all_images}
        assert run.abuse.matched_digests == base.abuse.matched_digests & run_digests

        # -- NSFV: per-digest verdicts identical ------------------------
        base_verdicts = {c.digest: v for c, v in base.preview_verdicts}
        for crawled, verdict in run.preview_verdicts:
            assert verdict == base_verdicts[crawled.digest]

        # -- provenance: per-digest reverse-search outcomes identical ---
        base_outcomes = {
            o.digest: (o.n_matches, o.domains)
            for o in base.provenance.pack_outcomes + base.provenance.preview_outcomes
        }
        for outcome in run.provenance.pack_outcomes + run.provenance.preview_outcomes:
            if outcome.digest in base_outcomes:
                assert (outcome.n_matches, outcome.domains) == base_outcomes[outcome.digest]

    @pytest.mark.parametrize("profile", ["dirty", "hostile"])
    def test_corruption_only_ever_shrinks_earnings_evidence(
        self, profile_runs, profile
    ):
        _, base = profile_runs[None]
        _, run = profile_runs[profile]
        assert run.earnings is not None
        assert run.earnings.n_proofs <= base.earnings.n_proofs

    def test_hostile_ledger_spans_crawl_and_earnings(self, profile_runs):
        _, report = profile_runs["hostile"]
        by_stage = report.quarantine.by_stage()
        assert by_stage.get("url_crawl", 0) > 0
        # every admitted record came from a known record boundary
        assert set(by_stage) <= {
            "url_crawl", "earnings", "abuse_filter", "nsfv", "provenance"
        }

    def test_quarantine_surfaces_in_digest_rendering(self, profile_runs):
        from repro.core.report_text import render_digest

        _, report = profile_runs["hostile"]
        text = render_digest(report)
        assert "== quarantine (record-level faults) ==" in text
        assert "records quarantined" in text


# ----------------------------------------------------------------------
# Fault profiles × incremental store runs (DESIGN.md §12)
# ----------------------------------------------------------------------


@pytest.mark.slow
class TestFaultProfilesThroughStore:
    """The fault matrix crossed with the watermark-delta engine.

    Payload corruption and transport chaos are injected per-URL by pure
    hashes, so a delta run replaying warm memos over a hostile world
    must admit the *same* quarantine ledger — and the same clean-record
    outputs — as a cold run over the union.  A memo that cached its way
    past an injected fault would break the injected == quarantined
    invariant silently; this pins it across profiles.
    """

    @pytest.mark.parametrize(
        "fault_kw",
        [
            {"payload_profile": "hostile"},
            {"fault_profile": "hostile"},
            {"fault_profile": "flaky", "payload_profile": "dirty"},
        ],
        ids=["payload", "transport", "transport+payload"],
    )
    def test_incremental_ledger_matches_cold(self, tmp_path, fault_kw):
        from repro.store import run_incremental

        cfg = dict(WORLD_KW, epoch_total=2, **fault_kw)
        cold = run_incremental(tmp_path / "cold.sqlite", epoch=2, **cfg)
        run_incremental(tmp_path / "inc.sqlite", epoch=1, **cfg)
        inc = run_incremental(tmp_path / "inc.sqlite", epoch=2, **cfg)

        cold_ledger = [r.to_dict() for r in cold.report.quarantine.records]
        inc_ledger = [r.to_dict() for r in inc.report.quarantine.records]
        assert inc_ledger == cold_ledger
        assert inc.crawl_digest == cold.crawl_digest
        # zero stage failures on both paths: poison still dies at record
        # boundaries when every memo is warm
        assert cold.report.stage_failures == []
        assert inc.report.stage_failures == []

    def test_injected_equals_quarantined_through_store(self, tmp_path):
        from repro.store import run_incremental

        cfg = dict(WORLD_KW, epoch_total=2, payload_profile="hostile")
        run_incremental(tmp_path / "s.sqlite", epoch=1, **cfg)
        result = run_incremental(tmp_path / "s.sqlite", epoch=2, **cfg)
        report = result.report
        assert report.n_quarantined > 0
        assert sum(report.quarantine.by_error().values()) == report.n_quarantined
