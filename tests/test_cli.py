"""Tests for the command-line interface and text renderers."""

import pytest

from repro.cli import build_parser, main
from repro.core.report_text import (
    render_digest,
    render_earnings,
    render_table1,
    render_table5,
    render_table7,
    render_table8,
)
from repro.forum import load_dataset

CLI_WORLD = ["--seed", "3", "--scale", "0.006"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 7
        assert args.scale == 0.02
        assert args.annotate == 1000
        assert args.fault_profile is None
        assert args.payload_profile is None
        assert args.resume is None
        assert args.lenient is False

    def test_payload_profile_choices(self):
        args = build_parser().parse_args(["run", "--payload-profile", "hostile"])
        assert args.payload_profile == "hostile"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--payload-profile", "bogus"])

    def test_fault_profile_choices(self):
        args = build_parser().parse_args(["run", "--fault-profile", "flaky"])
        assert args.fault_profile == "flaky"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--fault-profile", "bogus"])

    def test_resume_default_const(self):
        args = build_parser().parse_args(["run", "--resume"])
        assert str(args.resume) == "crawl.checkpoint.json"
        args = build_parser().parse_args(["run", "--resume", "custom.json"])
        assert str(args.resume) == "custom.json"

    def test_lenient_flag(self):
        args = build_parser().parse_args(["run", "--lenient"])
        assert args.lenient is True


class TestRenderers:
    def test_table1_totals_line(self, report):
        text = render_table1(report)
        assert "TOTAL" in text
        assert "Hackforums" in text

    def test_table5_groups(self, report):
        text = render_table5(report)
        assert "packs" in text and "previews" in text

    def test_table7_currencies(self, report):
        text = render_table7(report.currency_exchange)
        for currency in ("PayPal", "BTC", "AGC"):
            assert currency in text

    def test_table8_rows(self, report):
        text = render_table8(report)
        assert ">= 1" in text and ">= 1000" in text

    def test_earnings_block(self, report):
        text = render_earnings(report.earnings)
        assert "mean transaction" in text

    def test_digest_contains_all_sections(self, report):
        digest = render_digest(report)
        for marker in ("§3", "§4.1", "§4.2", "§4.3", "§4.4", "§4.5", "§5", "§6"):
            assert marker in digest


@pytest.mark.slow
class TestCommands:
    def test_build_round_trip(self, tmp_path, capsys):
        out = tmp_path / "world.jsonl"
        code = main(["build", *CLI_WORLD, "--out", str(out)])
        assert code == 0
        dataset = load_dataset(out)
        assert dataset.n_posts > 100

    def test_run_prints_digest(self, capsys):
        code = main(["run", *CLI_WORLD, "--annotate", "200"])
        assert code == 0
        output = capsys.readouterr().out
        assert "== selection (§3) ==" in output
        assert "key actors:" in output

    def test_run_with_fault_profile_and_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "crawl.json"
        code = main(
            ["run", *CLI_WORLD, "--annotate", "200",
             "--fault-profile", "flaky", "--resume", str(ckpt)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "-- crawl resilience --" in output
        assert "retries:" in output
        assert ckpt.exists()
        # a second run resumes from the completed checkpoint and succeeds
        code = main(
            ["run", *CLI_WORLD, "--annotate", "200",
             "--fault-profile", "flaky", "--resume", str(ckpt)]
        )
        assert code == 0

    def test_run_with_payload_profile_reports_quarantine(self, capsys):
        code = main(
            ["run", *CLI_WORLD, "--annotate", "200", "--payload-profile", "hostile"]
        )
        assert code == 0
        output = capsys.readouterr().out
        # the run still completes and renders the digest ...
        assert "== selection (§3) ==" in output
        # ... and both quarantine surfaces carry the ledger
        assert "== quarantine (record-level faults) ==" in output
        assert "-- quarantine --" in output
        assert "records quarantined" in output

    def test_tables_writes_files(self, tmp_path, capsys):
        out = tmp_path / "tables"
        code = main(["tables", *CLI_WORLD, "--annotate", "200", "--out", str(out)])
        assert code == 0
        names = {p.name for p in out.iterdir()}
        assert {"table1_forums.txt", "digest.txt"} <= names
