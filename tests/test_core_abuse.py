"""Tests for the abuse filter (§4.3)."""

from datetime import datetime

import pytest

from repro.core import AbuseFilter
from repro.media import ImageKind, SyntheticImage, sample_latent
from repro.vision import (
    AbuseSeverity,
    HashListService,
    IndexedCopy,
    ReverseImageIndex,
    robust_hash,
)
from repro.web import LinkRecord, Url
from repro.web.crawler import CrawledImage, content_digest

T0 = datetime(2016, 1, 1)


def crawled(image, thread_id=1):
    return CrawledImage(
        image=image,
        digest=content_digest(image),
        link=LinkRecord(url=Url("imgur.com", f"/x{image.image_id}"),
                        thread_id=thread_id, post_id=1, author_id=1, posted_at=T0),
    )


@pytest.fixture()
def abusive_and_clean(rng):
    bad = SyntheticImage(1, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1, is_underage=True))
    clean = SyntheticImage(2, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=2))
    return bad, clean


class TestSweep:
    def test_detects_known_image(self, abusive_and_clean):
        bad, clean = abusive_and_clean
        hashlist = HashListService()
        hashlist.add_known_image(bad.pixels, AbuseSeverity.CATEGORY_B, victim_age=17)
        result = AbuseFilter(hashlist).sweep([crawled(bad), crawled(clean)])
        assert result.n_matched_images == 1
        assert not result.is_clean(crawled(bad))
        assert result.is_clean(crawled(clean))

    def test_pixels_dropped_on_match(self, abusive_and_clean):
        bad, _ = abusive_and_clean
        hashlist = HashListService()
        hashlist.add_known_image(bad.pixels, AbuseSeverity.CATEGORY_A)
        record = crawled(bad)
        AbuseFilter(hashlist).sweep([record])
        assert record.image._pixels is None

    def test_duplicate_copies_counted_once(self, abusive_and_clean):
        bad, _ = abusive_and_clean
        hashlist = HashListService()
        hashlist.add_known_image(bad.pixels, AbuseSeverity.CATEGORY_B)
        result = AbuseFilter(hashlist).sweep([crawled(bad, 1), crawled(bad, 2)])
        assert result.n_matched_images == 1
        assert result.affected_thread_ids == {1, 2}

    def test_actionable_entries_reported_with_urls(self, abusive_and_clean):
        bad, _ = abusive_and_clean
        hashlist = HashListService()
        hashlist.add_known_image(bad.pixels, AbuseSeverity.CATEGORY_B, victim_age=17,
                                 actionable=True)
        index = ReverseImageIndex()
        h = robust_hash(bad.pixels)
        index.index_hash(h, IndexedCopy("https://porn.example/1", "porn.example", T0))
        index.index_hash(h, IndexedCopy("https://blog.example/2", "blog.example", T0))

        def domain_info(domain):
            return ("Europe", "blog" if "blog" in domain else "regular website")

        result = AbuseFilter(hashlist, reverse_index=index, domain_info=domain_info).sweep(
            [crawled(bad)]
        )
        assert result.n_actioned_urls == 2
        assert result.severity_histogram[AbuseSeverity.CATEGORY_B] == 2
        assert result.region_histogram["Europe"] == 2
        assert result.site_type_histogram["blog"] == 1

    def test_non_actionable_not_reported(self, abusive_and_clean):
        bad, _ = abusive_and_clean
        hashlist = HashListService()
        hashlist.add_known_image(bad.pixels, AbuseSeverity.CATEGORY_B, actionable=False)
        result = AbuseFilter(hashlist).sweep([crawled(bad)])
        assert result.n_matched_images == 1
        assert result.n_actioned_urls == 0

    def test_empty_sweep(self):
        result = AbuseFilter(HashListService()).sweep([])
        assert result.n_matched_images == 0
        assert result.matched_digests == set()


class TestWorldSweep:
    def test_world_abuse_statistics(self, world, report):
        """With elevated test-world rates the sweep must find material."""
        result = report.abuse
        assert result.n_matched_images > 0
        assert result.affected_thread_ids
        # Exposure lower bound: repliers of affected threads.
        assert len(result.exposed_actor_ids) > 0

    def test_matched_images_excluded_downstream(self, report):
        matched = report.abuse.matched_digests
        for crawled_image, _ in report.preview_verdicts:
            assert crawled_image.digest not in matched
        for outcome in report.provenance.pack_outcomes:
            assert outcome.digest not in matched

    def test_actioned_urls_have_metadata(self, report):
        log = report.abuse.report_log
        if log.n_reports == 0:
            pytest.skip("no actionable reports in this world")
        for record in log.records:
            assert record.severity in AbuseSeverity
