"""Tests for the §6 actor analysis."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core import (
    ActorAnalyzer,
    cohort_table,
    interest_evolution,
    select_key_actors,
)
from repro.core.actors import ActorMetrics, _eigenvector_centrality
from repro.forum import Actor, Board, Forum, ForumDataset, Post, Thread

T0 = datetime(2014, 1, 1)


def star_graph_dataset(n_fans=5):
    """One popular initiator, n fans replying (star interaction graph)."""
    ds = ForumDataset()
    ds.add_forum(Forum(1, "F", has_ewhoring_board=True))
    ds.add_board(Board(10, 1, "eWhoring", is_ewhoring_board=True))
    ds.add_actor(Actor(100, 1, "hub", T0))
    for i in range(n_fans):
        ds.add_actor(Actor(200 + i, 1, f"fan{i}", T0))
    ds.add_thread(Thread(1000, 10, 1, 100, "big thread", T0))
    ds.add_post(Post(1, 1000, 100, T0, "op", 0))
    for i in range(n_fans):
        ds.add_post(Post(2 + i, 1000, 200 + i, T0 + timedelta(days=i + 1), "re", i + 1))
    return ds


class TestInteractionRules:
    def test_reply_without_quote_targets_initiator(self):
        ds = star_graph_dataset(3)
        analyzer = ActorAnalyzer(ds)
        edges = analyzer.edges()
        for i in range(3):
            assert edges[(200 + i, 100)] == 1.0

    def test_quote_overrides_initiator(self):
        ds = star_graph_dataset(2)
        # fan1 quotes fan0's post (post id 2).
        ds.add_post(Post(50, 1000, 201, T0 + timedelta(days=9), "q", 3,
                         quoted_post_id=2))
        edges = ActorAnalyzer(ds).edges()
        assert edges[(201, 200)] == 1.0

    def test_self_replies_excluded(self):
        ds = star_graph_dataset(1)
        ds.add_post(Post(60, 1000, 100, T0 + timedelta(days=10), "self", 2))
        edges = ActorAnalyzer(ds).edges()
        assert (100, 100) not in edges

    def test_edge_weights_accumulate(self):
        ds = star_graph_dataset(1)
        ds.add_post(Post(70, 1000, 200, T0 + timedelta(days=11), "again", 2))
        edges = ActorAnalyzer(ds).edges()
        assert edges[(200, 100)] == 2.0


class TestMetrics:
    def test_post_counts(self):
        ds = star_graph_dataset(4)
        metrics = ActorAnalyzer(ds).metrics()
        assert metrics[100].n_ewhoring_posts == 1
        assert metrics[200].n_ewhoring_posts == 1
        assert metrics[100].n_total_posts == 1

    def test_h_index(self):
        ds = star_graph_dataset(5)  # one thread with 5 replies -> H = 1
        metrics = ActorAnalyzer(ds).metrics()
        assert metrics[100].h_index == 1
        assert metrics[100].i10 == 0

    def test_h_index_multiple_threads(self):
        ds = star_graph_dataset(2)
        # Second popular thread by the hub with 2 replies -> H = 2.
        ds.add_thread(Thread(1001, 10, 1, 100, "second", T0))
        ds.add_post(Post(80, 1001, 100, T0, "op", 0))
        ds.add_post(Post(81, 1001, 200, T0 + timedelta(days=1), "r", 1))
        ds.add_post(Post(82, 1001, 201, T0 + timedelta(days=2), "r", 2))
        metrics = ActorAnalyzer(ds).metrics()
        assert metrics[100].h_index == 2

    def test_days_before_after(self):
        ds = star_graph_dataset(1)
        # Fan also posts on another board before and after.
        ds.add_board(Board(11, 1, "Gaming", category="Gaming"))
        ds.add_thread(Thread(1100, 11, 1, 200, "games", T0 - timedelta(days=30)))
        ds.add_post(Post(90, 1100, 200, T0 - timedelta(days=30), "g", 0))
        ds.add_post(Post(91, 1100, 200, T0 + timedelta(days=61), "g2", 1))
        metrics = ActorAnalyzer(ds).metrics()
        fan = metrics[200]
        assert fan.days_before == pytest.approx(31.0)
        assert fan.days_after == pytest.approx(60.0)

    def test_pct_ewhoring(self):
        ds = star_graph_dataset(1)
        ds.add_board(Board(11, 1, "Gaming", category="Gaming"))
        ds.add_thread(Thread(1100, 11, 1, 200, "games", T0))
        ds.add_post(Post(90, 1100, 200, T0, "g", 0))
        metrics = ActorAnalyzer(ds).metrics()
        assert metrics[200].pct_ewhoring == pytest.approx(50.0)


class TestEigenvector:
    def test_empty_graph(self):
        assert _eigenvector_centrality({}) == {}

    def test_star_centre_highest(self):
        edges = {(1, 0): 1.0, (2, 0): 1.0, (3, 0): 1.0}
        centrality = _eigenvector_centrality(edges)
        assert centrality[0] == max(centrality.values())

    def test_matches_networkx(self):
        import networkx as nx

        edges = {(1, 2): 2.0, (2, 3): 1.0, (3, 1): 1.0, (4, 1): 3.0}
        ours = _eigenvector_centrality(edges)
        graph = nx.Graph()
        for (a, b), w in edges.items():
            weight = graph.get_edge_data(a, b, {}).get("weight", 0.0) + w
            graph.add_edge(a, b, weight=weight)
        reference = nx.eigenvector_centrality(graph, weight="weight", max_iter=1000)
        norm = np.linalg.norm(list(reference.values()))
        for node, value in ours.items():
            assert value == pytest.approx(reference[node] / norm, abs=1e-4)


class TestCohortTable:
    def make_metrics(self, counts):
        return {
            i: ActorMetrics(actor_id=i, n_ewhoring_posts=c, n_total_posts=c)
            for i, c in enumerate(counts)
        }

    def test_cumulative_bands(self):
        rows = cohort_table(self.make_metrics([1, 5, 20, 200]), thresholds=(1, 10, 100))
        assert [r.n_actors for r in rows] == [4, 2, 1]

    def test_empty_band(self):
        rows = cohort_table(self.make_metrics([1, 2]), thresholds=(1, 1000))
        assert rows[1].n_actors == 0
        assert rows[1].mean_posts == 0.0

    def test_world_table8_shape(self, report):
        rows = report.cohorts
        counts = [r.n_actors for r in rows]
        assert counts == sorted(counts, reverse=True)
        # Mean posts rise with the threshold.
        nonempty = [r for r in rows if r.n_actors > 0]
        means = [r.mean_posts for r in nonempty]
        assert means == sorted(means)
        # %eWhoring rises with involvement (Table 8 trend), loosely.
        assert nonempty[-1].mean_pct_ewhoring >= nonempty[0].mean_pct_ewhoring - 8.0


class TestKeyActors:
    def test_selection_sizes(self, report):
        groups = report.key_actors.groups
        for name, group in groups.as_dict().items():
            assert len(group) <= 63, name
        assert report.key_actors.n_key_actors > 0

    def test_intersection_matrix_consistency(self, report):
        selection = report.key_actors
        matrix = selection.intersection_matrix()
        groups = selection.groups.as_dict()
        # Diagonal = unique members; bounded by the group size.
        for name, group in groups.items():
            assert 0 <= matrix[(name, name)] <= len(group)
        # Symmetric pairs only stored once, value = intersection size.
        assert matrix[("popular", "influence")] == len(
            groups["popular"] & groups["influence"]
        )

    def test_groups_overlap_somewhere(self, report):
        """§6.3: key actors belong to multiple groups (44 of 195 in the
        paper).  At test scale, *which* pair overlaps most is noisy, so
        assert only that multi-group membership exists."""
        counts = report.key_actors.membership_counts()
        assert max(counts.values()) >= 2

    def test_membership_counts(self, report):
        counts = report.key_actors.membership_counts()
        assert max(counts.values()) <= 5
        assert min(counts.values()) >= 1

    def test_group_characteristics_rows(self, report):
        table = report.key_actors.group_characteristics()
        assert "ALL" in table
        for name, row in table.items():
            if row:
                assert row["n_posts"] >= 0
                assert 0 <= row["pct_ewhoring"] <= 100

    def test_key_actors_more_active_than_average(self, world, report):
        metrics = report.actor_analyzer.metrics()
        key_ids = report.key_actors.groups.all_key_actors()
        key_posts = np.mean([metrics[a].n_ewhoring_posts for a in key_ids])
        all_posts = np.mean([m.n_ewhoring_posts for m in metrics.values()])
        assert key_posts > 2 * all_posts


class TestInterests:
    def test_percentages_sum_to_100(self, report):
        for phase, row in report.interests.percentages().items():
            if row:
                assert sum(row.values()) == pytest.approx(100.0)

    def test_figure5_market_shift(self, report):
        """Figure 5: Market interest grows from before to during."""
        pct = report.interests.percentages()
        if not pct["before"] or not pct["during"]:
            pytest.skip("phases empty at this scale")
        assert pct["during"].get("Market", 0) > pct["before"].get("Market", 0)

    def test_figure5_gaming_decline(self, report):
        pct = report.interests.percentages()
        if not pct["before"] or not pct["during"]:
            pytest.skip("phases empty at this scale")
        assert pct["before"].get("Gaming", 0) > pct["during"].get("Gaming", 0)

    def test_excluded_board_not_counted(self, world, report):
        metrics = report.actor_analyzer.metrics()
        key_ids = report.key_actors.groups.all_key_actors()
        with_exclusion = interest_evolution(
            world.dataset, metrics, key_ids, exclude_board_names=["Gaming Discussion"]
        )
        for phase_counts in with_exclusion.counts.values():
            assert "Gaming" not in phase_counts
