"""Tests for the §5 earnings pipeline and Table 7 CE analysis."""

from datetime import datetime

import numpy as np
import pytest

from repro.core import currency_exchange_table
from repro.finance import PaymentPlatform
from repro.forum import Actor, Board, Forum, ForumDataset, Post, Thread

T0 = datetime(2016, 1, 1)
T1 = datetime(2017, 1, 1)


class TestEarningsOnWorld:
    def test_funnel_monotone(self, report):
        er = report.earnings
        assert er.n_unique_urls >= er.n_downloaded
        assert er.n_downloaded >= er.n_analyzable
        assert er.n_analyzable == er.n_proofs + er.n_non_proofs
        assert er.n_abuse_matched + er.n_indecent_filtered + er.n_analyzable == er.n_downloaded

    def test_proofs_found(self, report):
        assert report.earnings.n_proofs > 5

    def test_annotation_matches_truth(self, world, report):
        truth = world.forums.proof_truth
        for record in report.earnings.records:
            assert record.image_id in truth
            plan = truth[record.image_id]
            assert record.platform is plan.platform
            assert record.n_transactions == plan.n_transactions

    def test_non_proofs_not_in_truth(self, world, report):
        # The oracle returned None exactly for non-proof images.
        assert report.earnings.n_non_proofs >= 0

    def test_indecent_images_never_annotated(self, world, report):
        """The NSFV gate keeps model images away from annotation (§5.1:
        'we have not visualised any image from models')."""
        for record in report.earnings.records:
            # every annotated image is a proof screenshot in ground truth
            assert record.image_id in world.forums.proof_truth

    def test_usd_conversion_positive(self, report):
        for record in report.earnings.records:
            assert record.total_usd > 0.0
            if record.shows_transactions:
                assert len(record.transaction_usd) == record.n_transactions
                assert sum(record.transaction_usd) == pytest.approx(record.total_usd)

    def test_mean_per_actor_ballpark(self, report):
        """§5.2: mean reported income per actor ≈ US$774."""
        mean = report.earnings.mean_per_actor_usd
        assert 150 < mean < 4000

    def test_mean_transaction_ballpark(self, report):
        """§5.2: average transaction ≈ US$41.90."""
        mean = report.earnings.mean_transaction_usd()
        assert 15 < mean < 110

    def test_platform_mix(self, report):
        histogram = report.earnings.platform_histogram()
        agc = histogram.get(PaymentPlatform.AMAZON_GIFT_CARD, 0)
        paypal = histogram.get(PaymentPlatform.PAYPAL, 0)
        # §5.2: AGC and PayPal dominate all other platforms combined.
        others = sum(v for k, v in histogram.items()
                     if k not in (PaymentPlatform.AMAZON_GIFT_CARD, PaymentPlatform.PAYPAL))
        assert agc + paypal > 3 * max(others, 1)

    def test_monthly_series_totals(self, report):
        platforms = (PaymentPlatform.AMAZON_GIFT_CARD, PaymentPlatform.PAYPAL)
        series = report.earnings.monthly_platform_series(platforms)
        histogram = report.earnings.platform_histogram()
        for platform in platforms:
            assert sum(series[platform].values()) == histogram.get(platform, 0)

    def test_figure3_crossover(self, report):
        """Figure 3: PayPal dominates early, AGC after 2016."""
        platforms = (PaymentPlatform.AMAZON_GIFT_CARD, PaymentPlatform.PAYPAL)
        series = report.earnings.monthly_platform_series(platforms)
        early_agc = sum(v for k, v in series[platforms[0]].items() if k < "2014-01")
        early_pp = sum(v for k, v in series[platforms[1]].items() if k < "2014-01")
        late_agc = sum(v for k, v in series[platforms[0]].items() if k >= "2017-01")
        late_pp = sum(v for k, v in series[platforms[1]].items() if k >= "2017-01")
        if early_agc + early_pp >= 8:
            assert early_pp >= early_agc
        if late_agc + late_pp >= 8:
            assert late_agc >= late_pp

    def test_cdf_data(self, report):
        cdf = report.earnings.earnings_cdf()
        assert np.all(np.diff(cdf) >= 0)
        counts = report.earnings.proof_count_cdf()
        assert counts.sum() == report.earnings.n_proofs


class TestCurrencyExchangeTable:
    def build_ce_dataset(self):
        ds = ForumDataset()
        ds.add_forum(Forum(1, "HF", has_ewhoring_board=True))
        ds.add_board(Board(10, 1, "eWhoring", is_ewhoring_board=True))
        ds.add_board(Board(11, 1, "Currency Exchange", is_currency_exchange=True))
        ds.add_actor(Actor(100, 1, "heavy", T0))
        ds.add_actor(Actor(101, 1, "light", T0))
        # Heavy actor: 60 eWhoring posts.
        ds.add_thread(Thread(1000, 10, 1, 100, "ewhoring general", T0))
        for i in range(60):
            ds.add_post(Post(2000 + i, 1000, 100, T0, "post", i))
        # Light actor: 2 posts.
        for i in range(2):
            ds.add_post(Post(2100 + i, 1000, 101, T0, "post", 60 + i))
        # CE threads: one before the heavy actor's first eWhoring post,
        # two after; one by the light actor.
        before = Thread(3000, 11, 1, 100, "[H] PayPal [W] BTC",
                        T0.replace(year=2015))
        ds.add_thread(before)
        ds.add_post(Post(4000, 3000, 100, before.created_at, "x", 0))
        for i, heading in enumerate(["[H] AGC [W] BTC", "[H] pp [W] bitcoin"]):
            t = Thread(3001 + i, 11, 1, 100, heading, T1)
            ds.add_thread(t)
            ds.add_post(Post(4001 + i, 3001 + i, 100, T1, "x", 0))
        light_thread = Thread(3003, 11, 1, 101, "[H] AGC [W] PayPal", T1)
        ds.add_thread(light_thread)
        ds.add_post(Post(4003, 3003, 101, T1, "x", 0))
        return ds

    def test_only_heavy_actors_counted(self):
        table = currency_exchange_table(self.build_ce_dataset(), min_ewhoring_posts=50)
        assert table.n_actors == 1
        assert table.n_threads == 2  # the pre-eWhoring thread is excluded

    def test_marginals(self):
        table = currency_exchange_table(self.build_ce_dataset(), min_ewhoring_posts=50)
        assert table.offered == {"AGC": 1, "PayPal": 1}
        assert table.wanted == {"BTC": 2}

    def test_threshold_configurable(self):
        table = currency_exchange_table(self.build_ce_dataset(), min_ewhoring_posts=1)
        assert table.n_actors == 2

    def test_world_table7_shape(self, report):
        """Table 7 shape: BTC is the most wanted currency; AGC is offered
        far more than it is wanted."""
        ce = report.currency_exchange
        if ce.n_threads < 30:
            pytest.skip("too few CE threads at this scale")
        assert ce.wanted.get("BTC", 0) == max(ce.wanted.values())
        assert ce.offered.get("AGC", 0) > 2 * ce.wanted.get("AGC", 1)

    def test_world_row_sums_equal(self, report):
        ce = report.currency_exchange
        assert sum(ce.offered.values()) == sum(ce.wanted.values()) == ce.n_threads
