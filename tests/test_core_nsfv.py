"""Tests for Algorithm 1 — the NSFV classifier (§4.4)."""

import numpy as np
import pytest

from repro.core import NsfvClassifier
from repro.media import ImageKind, SyntheticImage, sample_latent


def render(rng, kind, **kwargs):
    lat = sample_latent(rng, kind, model_id=1 if kind.is_model else None, **kwargs)
    return SyntheticImage(0, lat).pixels


class TestAlgorithmStructure:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            NsfvClassifier(sfv_threshold=0.5, nsfv_threshold=0.3)
        with pytest.raises(ValueError):
            NsfvClassifier(low_band_threshold=0.5, nsfv_threshold=0.3)

    def test_defaults_are_paper_values(self):
        clf = NsfvClassifier()
        assert clf.sfv_threshold == 0.01
        assert clf.nsfv_threshold == 0.30
        assert clf.low_band_threshold == 0.05
        assert clf.low_ocr_words == 10
        assert clf.high_ocr_words == 20

    def test_verdict_carries_scores(self, rng):
        verdict = NsfvClassifier().classify(render(rng, ImageKind.MODEL_NUDE))
        assert 0.0 <= verdict.nsfw_score <= 1.0
        assert verdict.nsfv == (not verdict.safe_for_viewing)


class TestVerdicts:
    def test_proofs_are_sfv(self, rng):
        clf = NsfvClassifier()
        for _ in range(10):
            assert clf.is_sfv(render(rng, ImageKind.PROOF_SCREENSHOT))

    def test_chat_screenshots_sfv(self, rng):
        clf = NsfvClassifier()
        for _ in range(10):
            assert clf.is_sfv(render(rng, ImageKind.CHAT_SCREENSHOT))

    def test_nude_images_nsfv(self, rng):
        clf = NsfvClassifier()
        for _ in range(10):
            assert not clf.is_sfv(render(rng, ImageKind.MODEL_NUDE))

    def test_sexual_images_nsfv(self, rng):
        clf = NsfvClassifier()
        for _ in range(10):
            assert not clf.is_sfv(render(rng, ImageKind.MODEL_SEXUAL))

    def test_dressed_models_nsfv(self, rng):
        """The conservative design: clothed models without text must stay
        NSFV even when their NSFW score is ambiguous."""
        clf = NsfvClassifier()
        for _ in range(20):
            assert not clf.is_sfv(render(rng, ImageKind.MODEL_DRESSED))

    def test_zero_false_negatives_on_validation_set(self, rng):
        """§4.4: '100% detection of NSFV images' on the validation data."""
        clf = NsfvClassifier()
        for _ in range(60):
            for kind in (ImageKind.MODEL_DRESSED, ImageKind.MODEL_NUDE,
                         ImageKind.MODEL_SEXUAL):
                assert not clf.is_sfv(render(rng, kind))

    def test_false_positive_rate_moderate(self, rng):
        """§4.4 reports ~8% false positives (non-nude flagged NSFV)."""
        clf = NsfvClassifier()
        non_nude = [ImageKind.PROOF_SCREENSHOT, ImageKind.CHAT_SCREENSHOT,
                    ImageKind.DOCUMENT, ImageKind.SOURCE_CODE,
                    ImageKind.LANDSCAPE, ImageKind.GAME_SCREENSHOT,
                    ImageKind.MEME]
        flags = []
        for _ in range(20):
            for kind in non_nude:
                flags.append(not clf.is_sfv(render(rng, kind)))
        fp_rate = np.mean(flags)
        assert fp_rate < 0.25
        assert fp_rate > 0.0  # sandy landscapes etc. do exist

    def test_classify_batch(self, rng):
        clf = NsfvClassifier()
        rasters = [render(rng, ImageKind.PROOF_SCREENSHOT) for _ in range(3)]
        verdicts = clf.classify_batch(rasters)
        assert len(verdicts) == 3
        assert all(v.safe_for_viewing for v in verdicts)

    def test_ocr_rescues_texty_ambiguous_images(self):
        """An image in the ambiguous band with enough words is SFV."""

        class FakeScorer:
            def score(self, pixels):
                return 0.03

        class FakeOcr:
            def word_count(self, pixels):
                return 15

        clf = NsfvClassifier(scorer=FakeScorer(), ocr=FakeOcr())
        verdict = clf.classify(np.zeros((16, 16, 3)))
        assert verdict.safe_for_viewing
        assert verdict.ocr_words == 15

    def test_high_band_needs_more_words(self):
        class FakeScorer:
            def score(self, pixels):
                return 0.15

        class FakeOcr:
            def __init__(self, n):
                self.n = n

            def word_count(self, pixels):
                return self.n

        assert not NsfvClassifier(
            scorer=FakeScorer(), ocr=FakeOcr(15)
        ).is_sfv(np.zeros((16, 16, 3)))
        assert NsfvClassifier(
            scorer=FakeScorer(), ocr=FakeOcr(25)
        ).is_sfv(np.zeros((16, 16, 3)))

    def test_world_previews_mostly_nsfv(self, report):
        """§4.4: ~60% of downloaded preview-link images are NSFV."""
        total = len(report.preview_verdicts)
        if total < 20:
            pytest.skip("too few previews at this scale")
        fraction = report.n_nsfv_previews / total
        assert 0.4 < fraction < 0.9
