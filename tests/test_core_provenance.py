"""Tests for the provenance stage (§4.5)."""

from datetime import datetime, timedelta

import pytest

from repro.core import PackSampling, ProvenanceAnalyzer
from repro.domains import default_classifiers
from repro.media import ImageKind, Pack, SyntheticImage, sample_latent
from repro.vision import IndexedCopy, ReverseImageIndex
from repro.web import LinkRecord, Url, WaybackArchive
from repro.web.crawler import CrawledImage, content_digest

T0 = datetime(2016, 6, 1)
EARLIER = T0 - timedelta(days=400)
LATER = T0 + timedelta(days=100)


def crawled(image, pack_id=None, posted_at=T0):
    return CrawledImage(
        image=image,
        digest=content_digest(image),
        link=LinkRecord(url=Url("mediafire.com", f"/p{image.image_id}"),
                        thread_id=1, posted_at=posted_at,
                        link_kind="pack" if pack_id else "preview"),
        pack_id=pack_id,
    )


@pytest.fixture()
def setting(rng):
    """Three pack images: one indexed early, one indexed late, one not."""
    images = [
        SyntheticImage(i, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=i))
        for i in (1, 2, 3)
    ]
    index = ReverseImageIndex()
    index.index_pixels(images[0].pixels,
                       IndexedCopy("https://porn0.com/a", "porn0.com", EARLIER))
    index.index_pixels(images[1].pixels,
                       IndexedCopy("https://porn1.com/b", "porn1.com", LATER))
    archive = WaybackArchive(seed=0, coverage=1.0)
    return images, index, archive


class TestQueryOutcomes:
    def test_match_and_seen_before(self, setting):
        images, index, archive = setting
        analyzer = ProvenanceAnalyzer(index, archive=archive)
        result = analyzer.analyze([crawled(img, pack_id=1) for img in images], [])
        outcomes = {o.digest: o for o in result.pack_outcomes}
        early = outcomes[content_digest(images[0])]
        late = outcomes[content_digest(images[1])]
        missing = outcomes[content_digest(images[2])]
        assert early.matched and early.seen_before
        assert late.matched and not late.seen_before
        assert not missing.matched and not missing.seen_before

    def test_archive_rescues_seen_before(self, setting):
        """A match crawled late still counts as seen-before when the
        Wayback analogue archived the URL early."""
        images, index, archive = setting
        archive.record("https://porn1.com/b", EARLIER)
        analyzer = ProvenanceAnalyzer(index, archive=archive)
        result = analyzer.analyze([crawled(images[1], pack_id=1)], [])
        assert result.pack_outcomes[0].seen_before

    def test_zero_match_packs(self, setting):
        images, index, archive = setting
        analyzer = ProvenanceAnalyzer(index)
        result = analyzer.analyze(
            [crawled(images[0], pack_id=1), crawled(images[2], pack_id=2)], []
        )
        assert result.zero_match_pack_ids == {2}

    def test_summary_rows(self, setting):
        images, index, _ = setting
        analyzer = ProvenanceAnalyzer(index)
        result = analyzer.analyze([crawled(img, pack_id=1) for img in images], [])
        summary = result.summary("packs")
        assert summary.total == 3
        assert summary.matches == 2
        assert summary.match_rate == pytest.approx(2 / 3)
        assert summary.mean_matches_per_matched == pytest.approx(1.0)
        assert summary.max_matches == 1

    def test_previews_analyzed_without_sampling(self, setting):
        images, index, _ = setting
        analyzer = ProvenanceAnalyzer(index)
        result = analyzer.analyze([], [crawled(img) for img in images])
        assert len(result.preview_outcomes) == 3


class TestPackSampling:
    def test_at_most_three_per_pack(self, rng):
        images = [
            SyntheticImage(i, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1))
            for i in range(10)
        ]
        index = ReverseImageIndex()
        analyzer = ProvenanceAnalyzer(index)
        result = analyzer.analyze([crawled(img, pack_id=7) for img in images], [])
        assert len(result.pack_outcomes) == 3

    def test_small_pack_fully_sampled(self, rng):
        images = [
            SyntheticImage(i, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1))
            for i in range(2)
        ]
        analyzer = ProvenanceAnalyzer(ReverseImageIndex())
        result = analyzer.analyze([crawled(img, pack_id=7) for img in images], [])
        assert len(result.pack_outcomes) == 2

    def test_duplicates_collapsed_before_sampling(self, rng):
        image = SyntheticImage(1, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1))
        analyzer = ProvenanceAnalyzer(ReverseImageIndex())
        result = analyzer.analyze([crawled(image, pack_id=7)] * 5, [])
        assert len(result.pack_outcomes) == 1

    def test_configurable_sampling(self, rng):
        images = [
            SyntheticImage(i, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1))
            for i in range(10)
        ]
        analyzer = ProvenanceAnalyzer(
            ReverseImageIndex(), sampling=PackSampling(per_pack=5)
        )
        result = analyzer.analyze([crawled(img, pack_id=7) for img in images], [])
        assert len(result.pack_outcomes) == 5


class TestDomainClassification:
    def test_tables_per_classifier(self, setting):
        images, index, _ = setting
        categories = {"porn0.com": "Pornography", "porn1.com": "Blogs"}
        analyzer = ProvenanceAnalyzer(
            index,
            classifiers=default_classifiers(seed=0),
            category_lookup=categories.get,
        )
        result = analyzer.analyze([crawled(img, pack_id=1) for img in images], [])
        assert set(result.domain_tables) == {"McAfee", "VirusTotal", "OpenDNS"}
        assert set(result.matched_domains) == {"porn0.com", "porn1.com"}
        for rows in result.domain_tables.values():
            assert rows  # every classifier produced a distribution


class TestWorldProvenance:
    def test_table5_shape(self, report):
        """Table 5 shape: majority of pack images match; previews match
        less often (modifications); seen-before below match rate."""
        packs = report.provenance.summary("packs")
        previews = report.provenance.summary("previews")
        assert packs.total > 0 and previews.total > 0
        assert packs.match_rate > 0.5
        assert previews.match_rate < packs.match_rate
        assert packs.seen_before <= packs.matches
        assert previews.seen_before <= previews.matches

    def test_match_ratio_ballpark(self, report):
        packs = report.provenance.summary("packs")
        if packs.matches >= 10:
            assert 3.0 < packs.mean_matches_per_matched < 60.0

    def test_zero_match_packs_minority(self, report):
        n_packs = len(report.crawl.packs)
        if n_packs >= 10:
            fraction = len(report.provenance.zero_match_pack_ids) / n_packs
            assert fraction < 0.5

    def test_porn_dominates_domain_tables(self, report):
        """§4.5: top categories are mostly porn-related."""
        rows = report.provenance.domain_tables.get("McAfee", [])
        if not rows:
            pytest.skip("no domains matched at this scale")
        top_tags = [tag for tag, _, _ in rows[:3]]
        assert any(tag in ("Pornography", "Provocative Attire", "Nudity")
                   for tag in top_tags)
