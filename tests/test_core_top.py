"""Tests for TOP classification: features, heuristics, hybrid (§4.1)."""

from datetime import datetime

import numpy as np
import pytest

from repro.forum import Actor, Board, Forum, ForumDataset, Post, Thread
from repro.core import (
    HeuristicTopClassifier,
    HybridTopClassifier,
    ThreadFeatureExtractor,
    thread_document,
    thread_stats,
)
from repro.core.features import N_STAT_FEATURES

T0 = datetime(2015, 1, 1)


def build_dataset(entries):
    """entries: list of (heading, opener, n_extra_replies)."""
    ds = ForumDataset()
    ds.add_forum(Forum(1, "F"))
    ds.add_board(Board(2, 1, "B"))
    ds.add_actor(Actor(3, 1, "op", T0))
    threads = []
    next_thread, next_post = 100, 1000
    for heading, opener, n_replies in entries:
        thread = Thread(next_thread, 2, 1, 3, heading, T0)
        ds.add_thread(thread)
        ds.add_post(Post(next_post, next_thread, 3, T0, opener, 0))
        next_post += 1
        for r in range(n_replies):
            ds.add_post(Post(next_post, next_thread, 3, T0, "thanks", r + 1))
            next_post += 1
        threads.append(thread)
        next_thread += 1
    return ds, threads


class TestThreadStats:
    def test_link_counting(self):
        opener = (
            "previews https://imgur.com/a https://gyazo.com/b "
            "pack https://mediafire.com/c other https://somewhere.org/d"
        )
        ds, threads = build_dataset([("pack thread", opener, 2)])
        stats = thread_stats(ds, threads[0])
        assert stats.n_imageshare_links == 2
        assert stats.n_cloud_links == 1
        assert stats.n_internal_links == 1
        assert stats.n_replies == 2
        assert stats.first_post_length == len(opener)

    def test_heading_features(self):
        ds, threads = build_dataset([("Looking for a pack? [Question]", "x", 0)])
        stats = thread_stats(ds, threads[0])
        assert stats.heading_question_marks == 1
        assert stats.heading_request_keywords >= 2
        assert stats.heading_pack_keywords >= 1

    def test_as_array_width(self):
        ds, threads = build_dataset([("x pack", "y", 0)])
        assert thread_stats(ds, threads[0]).as_array().shape == (N_STAT_FEATURES,)


class TestThreadDocument:
    def test_heading_doubled(self):
        ds, threads = build_dataset([("UNIQUEHEADING", "opener text", 1)])
        doc = thread_document(ds, threads[0])
        assert doc.count("UNIQUEHEADING") == 2
        assert "opener text" in doc

    def test_reply_truncation(self):
        ds, threads = build_dataset([("h", "o", 20)])
        doc = thread_document(ds, threads[0])
        assert doc.count("thanks") <= 6


class TestHeuristics:
    CASES_TOP = [
        "[FREE] Unsaturated Amber pack - 50 pics",
        "Huge compilation: 300 pics of Mia",
        "My private girl pack - Ruby - enjoy",
    ]
    CASES_NOT_TOP = [
        "Looking for a good pack, any help?",          # request lexicon
        "How to find new packs? quick question",       # question mark
        "[TUT] The definite guide to ewhoring 2015",   # tutorial
        "Is ewhoring dead in 2017?",                   # no pack words
        "Post your earnings!",                         # earnings thread
        "WTB unsaturated pack - paying well",          # buy keyword
    ]

    def test_positive_cases(self):
        clf = HeuristicTopClassifier()
        ds, threads = build_dataset([(h, "x", 0) for h in self.CASES_TOP])
        assert all(clf.predict(ds, threads))

    def test_negative_cases(self):
        clf = HeuristicTopClassifier()
        ds, threads = build_dataset([(h, "x", 0) for h in self.CASES_NOT_TOP])
        assert not any(clf.predict(ds, threads))

    def test_question_mark_tolerance_configurable(self):
        ds, threads = build_dataset([("pack here?", "x", 0)])
        assert not HeuristicTopClassifier().is_top(threads[0])
        assert HeuristicTopClassifier(max_question_marks=1).is_top(threads[0])


class TestFeatureExtractor:
    def test_fit_transform_shape(self):
        ds, threads = build_dataset(
            [("pack pics here", "body body", 1), ("question help", "body", 0)] * 3
        )
        extractor = ThreadFeatureExtractor(min_df=1)
        matrix = extractor.fit_transform(ds, threads)
        assert matrix.shape[0] == len(threads)
        assert matrix.shape[1] > N_STAT_FEATURES

    def test_transform_requires_fit(self):
        ds, threads = build_dataset([("x", "y", 0)])
        with pytest.raises(RuntimeError):
            ThreadFeatureExtractor().transform(ds, threads)

    def test_empty_thread_list_after_fit(self):
        ds, threads = build_dataset([("pack", "y", 0), ("other", "z", 0)])
        extractor = ThreadFeatureExtractor(min_df=1).fit(ds, threads)
        out = extractor.transform(ds, [])
        assert out.shape[0] == 0

    def test_fit_empty_raises(self):
        ds, _ = build_dataset([("x", "y", 0)])
        with pytest.raises(ValueError):
            ThreadFeatureExtractor().fit(ds, [])

    def test_stats_standardised(self):
        entries = [(f"heading {i} pack", "body " * (i + 1), i) for i in range(6)]
        ds, threads = build_dataset(entries)
        extractor = ThreadFeatureExtractor(min_df=1)
        matrix = extractor.fit_transform(ds, threads)
        stats_block = matrix[:, :N_STAT_FEATURES]
        # Columns with variance are z-scored: mean ~0.
        assert abs(stats_block[:, 0].mean()) < 1e-9


class TestHybridOnWorld:
    def test_evaluation_quality(self, report):
        """§4.1: the hybrid reaches high precision/recall (92/93 paper)."""
        evaluation = report.top_evaluation
        assert evaluation.precision > 0.7
        assert evaluation.recall > 0.8
        assert evaluation.f1 > 0.75

    def test_union_consistency(self, report):
        stats = report.extraction_stats
        assert stats.n_hybrid >= max(stats.n_ml, stats.n_heuristic)
        assert stats.n_hybrid <= stats.n_ml + stats.n_heuristic
        assert stats.n_both <= min(stats.n_ml, stats.n_heuristic)
        assert stats.ml_only + stats.heuristic_only + stats.n_both == stats.n_hybrid

    def test_extraction_close_to_truth(self, world, report):
        truth = sum(1 for v in world.forums.thread_types.values() if v == "top")
        assert report.extraction_stats.n_hybrid == pytest.approx(truth, rel=0.35)

    def test_bhw_has_no_extracted_tops(self, report):
        assert report.tops_per_forum.get("BlackHatWorld", 0) <= 1

    def test_predict_before_fit_raises(self):
        ds, threads = build_dataset([("x", "y", 0)])
        with pytest.raises(RuntimeError):
            HybridTopClassifier().predict_ml(ds, threads)

    def test_fit_label_mismatch(self):
        ds, threads = build_dataset([("x", "y", 0)])
        with pytest.raises(ValueError):
            HybridTopClassifier().fit(ds, threads, [True, False])
