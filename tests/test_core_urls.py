"""Tests for URL extraction and the snowball whitelist (§4.2)."""

from datetime import datetime

import pytest

from repro.core import WhitelistBuilder, extract_links
from repro.forum import Actor, Board, Forum, ForumDataset, Post, Thread
from repro.web import ServiceKind, Url

T0 = datetime(2016, 2, 2)


def dataset_with_openers(openers):
    ds = ForumDataset()
    ds.add_forum(Forum(1, "F"))
    ds.add_board(Board(2, 1, "B"))
    ds.add_actor(Actor(3, 1, "op", T0))
    threads = []
    for i, opener in enumerate(openers):
        thread = Thread(100 + i, 2, 1, 3, f"top {i}", T0)
        ds.add_thread(thread)
        ds.add_post(Post(1000 + i, 100 + i, 3, T0, opener, 0))
        threads.append(thread)
    return ds, threads


class TestWhitelistBuilder:
    def test_seed_whitelist_known(self):
        builder = WhitelistBuilder()
        assert builder.kind_of("imgur.com") is ServiceKind.IMAGE_SHARING
        assert builder.kind_of("mediafire.com") is ServiceKind.CLOUD_STORAGE
        assert builder.kind_of("unknown.com") is None

    def test_snowball_discovers_registry_services(self):
        builder = WhitelistBuilder()
        added = builder.snowball([Url("gyazo.com", "/x"), Url("zippyshare.com", "/y")])
        assert added >= 1
        assert builder.kind_of("zippyshare.com") is ServiceKind.CLOUD_STORAGE

    def test_snowball_rejects_non_services(self):
        builder = WhitelistBuilder()
        builder.snowball([Url("randomblog.org", "/post")])
        assert builder.kind_of("randomblog.org") is None

    def test_rejected_not_reinspected(self):
        builder = WhitelistBuilder()
        builder.snowball([Url("randomblog.org", "/a")])
        inspections = builder.n_inspections
        builder.snowball([Url("randomblog.org", "/b")])
        assert builder.n_inspections == inspections

    def test_case_insensitive(self):
        builder = WhitelistBuilder()
        builder.snowball([Url("gyazo.com", "/x")])
        assert builder.kind_of("GYAZO.COM") is ServiceKind.IMAGE_SHARING


class TestExtractLinks:
    def test_classifies_by_service_kind(self):
        ds, threads = dataset_with_openers([
            "see https://imgur.com/a and https://mega.nz/f download",
        ])
        result = extract_links(ds, threads)
        assert len(result.preview_links) == 1
        assert len(result.pack_links) == 1
        assert result.preview_links[0].link_kind == "preview"
        assert result.pack_links[0].link_kind == "pack"

    def test_unknown_urls_recorded(self):
        ds, threads = dataset_with_openers(["go to https://example.org/page now"])
        result = extract_links(ds, threads)
        assert len(result.unknown_urls) == 1
        assert result.all_links == []

    def test_metadata_attached(self):
        ds, threads = dataset_with_openers(["https://imgur.com/abc"])
        record = extract_links(ds, threads).preview_links[0]
        assert record.thread_id == threads[0].thread_id
        assert record.post_id == 1000
        assert record.author_id == 3
        assert record.posted_at == T0

    def test_threads_with_links_tracked(self):
        ds, threads = dataset_with_openers([
            "https://imgur.com/a", "no links here", "https://mega.nz/b",
        ])
        result = extract_links(ds, threads)
        assert result.threads_with_links == {threads[0].thread_id, threads[2].thread_id}

    def test_replies_scanned_optionally(self):
        ds, threads = dataset_with_openers(["opener without links"])
        ds.add_post(Post(2000, threads[0].thread_id, 3, T0,
                         "mirror: https://mediafire.com/m", 1))
        with_replies = extract_links(ds, threads, scan_replies=True)
        without = extract_links(ds, threads, scan_replies=False)
        assert len(with_replies.pack_links) == 1
        assert len(without.pack_links) == 0

    def test_links_per_domain(self):
        ds, threads = dataset_with_openers([
            "https://imgur.com/a https://imgur.com/b https://gyazo.com/c",
        ])
        result = extract_links(ds, threads)
        counts = result.links_per_domain(ServiceKind.IMAGE_SHARING)
        assert counts == {"imgur.com": 2, "gyazo.com": 1}

    def test_world_links_shape(self, report):
        """Tables 3/4 shape: imgur and MediaFire lead their families."""
        preview_counts = report.links.links_per_domain(ServiceKind.IMAGE_SHARING)
        pack_counts = report.links.links_per_domain(ServiceKind.CLOUD_STORAGE)
        if preview_counts:
            assert max(preview_counts, key=preview_counts.get) == "imgur.com"
        if sum(pack_counts.values()) >= 10:
            assert max(pack_counts, key=pack_counts.get) == "mediafire.com"

    def test_world_link_gating_rate(self, report):
        """§4.2: a minority of TOPs (18.7% in the paper) yield links."""
        fraction = len(report.links.threads_with_links) / max(len(report.tops), 1)
        assert 0.05 < fraction < 0.45
