"""Run the doctests embedded in module docstrings.

Keeps every usage example in the documentation executable.
"""

import doctest
import importlib

import pytest

# importlib is needed because package __init__ re-exports can shadow the
# submodule attribute (repro.text.tokenize is also a function).
MODULES = [
    importlib.import_module(name)
    for name in (
        "repro._rng",
        "repro.finance.parser",
        "repro.forum.stats",
        "repro.text.normalize",
        "repro.text.tokenize",
    )
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
