"""Tests for the domain-classification substrate."""

import pytest

from repro.domains import (
    MASTER_CATEGORIES,
    NO_RESULT,
    DomainClassifier,
    default_classifiers,
    tag_distribution,
)
from repro.domains.taxonomy import MCAFEE_MAPPING, OPENDNS_MAPPING, VIRUSTOTAL_MAPPING


class TestTaxonomy:
    def test_master_weights_positive_and_roughly_normalised(self):
        # Weights are relative (normalised at sampling time) but should
        # stay close to a probability vector for readability.
        weights = [w for _, w in MASTER_CATEGORIES]
        assert all(w > 0 for w in weights)
        assert sum(weights) == pytest.approx(1.0, abs=0.1)

    def test_porn_dominates(self):
        weights = dict(MASTER_CATEGORIES)
        assert weights["Pornography"] == max(weights.values())

    def test_all_mappings_cover_master(self):
        names = {name for name, _ in MASTER_CATEGORIES}
        for mapping in (MCAFEE_MAPPING, VIRUSTOTAL_MAPPING, OPENDNS_MAPPING):
            assert names <= set(mapping)

    def test_mapping_weights_positive(self):
        for mapping in (MCAFEE_MAPPING, VIRUSTOTAL_MAPPING, OPENDNS_MAPPING):
            for choices in mapping.values():
                assert all(weight > 0 for _, weight in choices)
                assert all(tags for tags, _ in choices)


class TestClassifier:
    def test_deterministic_per_domain(self):
        clf = DomainClassifier("X", MCAFEE_MAPPING, no_result_rate=0.1, seed=0)
        a = clf.classify("site.com", "Pornography")
        b = clf.classify("site.com", "Pornography")
        assert a == b

    def test_none_category_gives_no_result(self):
        clf = DomainClassifier("X", MCAFEE_MAPPING, no_result_rate=0.0)
        verdict = clf.classify("site.com", None)
        assert verdict.tags == (NO_RESULT,)
        assert not verdict.classified

    def test_zero_no_result_rate_always_classifies(self):
        clf = DomainClassifier("X", MCAFEE_MAPPING, no_result_rate=0.0, confusion_rate=0.0)
        for i in range(50):
            verdict = clf.classify(f"d{i}.com", "Games")
            assert verdict.tags == ("Games",)

    def test_full_no_result_rate(self):
        clf = DomainClassifier("X", MCAFEE_MAPPING, no_result_rate=1.0)
        assert clf.classify("a.com", "Games").tags == (NO_RESULT,)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            DomainClassifier("X", {}, no_result_rate=2.0)
        with pytest.raises(ValueError):
            DomainClassifier("X", {}, no_result_rate=0.1, confusion_rate=-1.0)

    def test_classify_many_alignment(self):
        clf = DomainClassifier("X", MCAFEE_MAPPING, no_result_rate=0.0)
        verdicts = clf.classify_many(["a.com", "b.com"], ["Games", "Blogs"])
        assert len(verdicts) == 2
        with pytest.raises(ValueError):
            clf.classify_many(["a.com"], ["Games", "Blogs"])

    def test_porn_maps_to_service_vocabulary(self):
        mcafee, virustotal, opendns = default_classifiers(seed=0)
        # Sample many domains; the dominant tags must come from each
        # service's own porn vocabulary.
        tags_mcafee = set()
        tags_virustotal = set()
        tags_opendns = set()
        for i in range(200):
            tags_mcafee.update(mcafee.classify(f"p{i}.com", "Pornography").tags)
            tags_virustotal.update(virustotal.classify(f"p{i}.com", "Pornography").tags)
            tags_opendns.update(opendns.classify(f"p{i}.com", "Pornography").tags)
        assert "Pornography" in tags_mcafee
        assert "adult content" in tags_virustotal
        assert "Pornography" in tags_opendns

    def test_opendns_higher_no_result(self):
        mcafee, _, opendns = default_classifiers(seed=1)
        domains = [f"x{i}.com" for i in range(800)]
        categories = ["Games"] * len(domains)
        mcafee_nr = sum(
            1 for v in mcafee.classify_many(domains, categories) if not v.classified
        )
        opendns_nr = sum(
            1 for v in opendns.classify_many(domains, categories) if not v.classified
        )
        # §4.5: OpenDNS leaves ~22% unclassified vs ~6% for the others.
        assert opendns_nr > 2 * mcafee_nr


class TestTagDistribution:
    def test_counts_tags_not_domains(self):
        clf = DomainClassifier("X", VIRUSTOTAL_MAPPING, no_result_rate=0.0, confusion_rate=0.0)
        verdicts = clf.classify_many(
            [f"d{i}.com" for i in range(100)], ["Pornography"] * 100
        )
        rows = tag_distribution(verdicts)
        total_tags = sum(count for _, count, _ in rows)
        assert total_tags >= 100  # multi-tag verdicts inflate the total

    def test_cumulative_percent_monotone(self):
        clf = DomainClassifier("X", MCAFEE_MAPPING, no_result_rate=0.1)
        verdicts = clf.classify_many(
            [f"d{i}.com" for i in range(50)], ["Games", "Blogs"] * 25
        )
        rows = tag_distribution(verdicts)
        percents = [p for _, _, p in rows]
        assert percents == sorted(percents)
        assert percents[-1] == pytest.approx(100.0)

    def test_empty(self):
        assert tag_distribution([]) == []
