"""Adversarial drift: transform properties, engine determinism, isolation.

Three invariant families from the R4 acceptance criteria:

* every registered transform is a pure function of ``(pixels, seed)``
  that preserves dtype/shape and never mutates its input;
* the drift engine is bit-deterministic in ``(world seed, profile,
  epoch)`` and the ``none`` profile / epoch 0 is a strict no-op — the
  pipeline's digests, quarantine ledger and deterministic telemetry are
  identical to a world that never met the drift engine;
* the harness produces identical decay reports across runs and worker
  counts.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro import build_world, run_pipeline
from repro.cli import build_parser
from repro.drift import (
    DRIFT_PROFILES,
    DefenseConfig,
    apply_drift,
    build_watchlist_selection,
    drift_profile,
    run_drift,
    sweep_hash_radius,
)
from repro.media.transforms import (
    STACKED_EVASION_TRANSFORMS,
    apply_chain,
    apply_transform,
    chain_seed,
    transform_names,
)
from repro.obs import RunTelemetry
from repro.synth.world import WorldConfig
from repro.web.internet import (
    FetchStatus,
    MAX_REDIRECT_HOPS,
    RedirectPage,
    SimulatedInternet,
)
from repro.web.url import (
    OBFUSCATION_STYLES,
    deobfuscate_text,
    extract_urls,
    normalize_url,
    obfuscate_url,
)

SCALE = 0.02


# ----------------------------------------------------------------------
# Transform property tests (satellite: media/transforms.py)
# ----------------------------------------------------------------------

def _raster_uint8(seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(32, 32, 3), dtype=np.uint8)


@pytest.mark.parametrize("name", transform_names())
def test_transform_deterministic_and_pure(name):
    pixels = _raster_uint8()
    before = pixels.copy()
    first = apply_transform(name, pixels, seed=17)
    second = apply_transform(name, pixels, seed=17)
    # Deterministic in (pixels, seed) ...
    np.testing.assert_array_equal(first, second)
    # ... never mutates the input ...
    np.testing.assert_array_equal(pixels, before)
    assert first is not pixels
    # ... and preserves dtype and 3-channel shape.
    assert first.dtype == np.uint8
    assert first.ndim == 3 and first.shape[2] == 3


@pytest.mark.parametrize("name", transform_names())
def test_transform_float_path(name):
    rng = np.random.default_rng(11)
    pixels = rng.random((24, 24, 3))
    out = apply_transform(name, pixels, seed=5)
    assert out.dtype == pixels.dtype
    assert out.ndim == 3 and out.shape[2] == 3
    assert float(out.min()) >= 0.0 and float(out.max()) <= 1.0


def test_apply_chain_deterministic_and_stacked():
    pixels = _raster_uint8()
    chain = ["mirror", "reencode", "rotate"]
    first = apply_chain(chain, pixels, seed=9)
    second = apply_chain(chain, pixels, seed=9)
    np.testing.assert_array_equal(first, second)
    # A different seed yields a different stack (rotate/reencode draw).
    other = apply_chain(chain, pixels, seed=10)
    assert not np.array_equal(first, other)
    # Steps get decorrelated seeds: stacking the same transform twice is
    # not a double application of identical draws.
    assert chain_seed(9, 0) != chain_seed(9, 1)


def test_stacked_pool_registered():
    registered = set(transform_names())
    assert set(STACKED_EVASION_TRANSFORMS) <= registered
    with pytest.raises(KeyError, match="unknown transform"):
        apply_transform("nope", _raster_uint8())


# ----------------------------------------------------------------------
# URL obfuscation + redirects
# ----------------------------------------------------------------------

def test_obfuscation_roundtrip():
    url = normalize_url("https://imgur.com/abc123")
    for style in OBFUSCATION_STYLES:
        mangled = obfuscate_url(url, style)
        assert mangled != str(url)
        # The regex extractor must miss the de-fanged spelling ...
        assert extract_urls(f"grab it here {mangled} enjoy") == []
        # ... and recover it exactly after deobfuscation.
        assert extract_urls(deobfuscate_text(f"grab it {mangled}")) == [url]
    with pytest.raises(ValueError, match="unknown obfuscation style"):
        obfuscate_url(url, "rot13")


def test_redirect_chain_resolution_and_loop_cap():
    from datetime import datetime

    net = SimulatedInternet(seed=1)
    image_url = normalize_url("https://imgur.com/target")
    from repro.media.image import ImageKind, sample_latent, SyntheticImage

    rng = np.random.default_rng(0)
    image = SyntheticImage(1, sample_latent(rng, ImageKind.MODEL_NUDE))
    t0 = datetime(2018, 1, 1)
    net.host_exact(image_url, image, t0)
    hop2 = normalize_url("https://lnk-a.net/h2")
    hop1 = normalize_url("https://lnk-a.net/h1")
    net.host_exact(hop2, RedirectPage(target=image_url), t0)
    net.host_exact(hop1, RedirectPage(target=hop2), t0)

    result = net.fetch(hop1)
    assert result.ok and result.resource is image
    assert result.n_hops == 2
    # Same (url, attempt) → same walk (checkpoint replay invariant).
    again = net.fetch(hop1)
    assert again.n_hops == 2 and again.resource is image

    loop_a = normalize_url("https://lnk-a.net/loop-a")
    loop_b = normalize_url("https://lnk-a.net/loop-b")
    net.host_exact(loop_a, RedirectPage(target=loop_b), t0)
    net.host_exact(loop_b, RedirectPage(target=loop_a), t0)
    looped = net.fetch(loop_a)
    assert looped.status is FetchStatus.REDIRECT_LOOP
    assert looped.n_hops == MAX_REDIRECT_HOPS + 1


# ----------------------------------------------------------------------
# Profiles + config validation (satellite: CLI/profile rejection)
# ----------------------------------------------------------------------

def test_drift_profile_lookup_and_rejection():
    assert drift_profile("hostile").transform_depth == 3
    assert drift_profile("none").is_trivial
    assert not drift_profile("mild").is_trivial
    with pytest.raises(ValueError, match=r"unknown drift profile 'bogus' \(known: aggressive"):
        drift_profile("bogus")
    with pytest.raises(ValueError, match="unknown drift profile"):
        WorldConfig(seed=1, scale=SCALE, drift_profile="bogus")
    with pytest.raises(ValueError, match="drift_epoch"):
        WorldConfig(seed=1, scale=SCALE, drift_epoch=-1)


def test_cli_rejects_unknown_profiles(capsys):
    parser = build_parser()
    for argv in (
        ["run", "--drift-profile", "bogus"],
        ["run", "--fault-profile", "bogus"],
        ["run", "--payload-profile", "bogus"],
        ["drift", "--profile", "bogus"],
    ):
        with pytest.raises(SystemExit):
            parser.parse_args(argv)
        err = capsys.readouterr().err
        # argparse lists the valid choices in the rejection message.
        assert "invalid choice: 'bogus'" in err
        assert "none" in err


def test_cli_drift_arguments():
    parser = build_parser()
    args = parser.parse_args(
        ["drift", "--profile", "hostile", "--epochs", "3", "--defenses", "on"]
    )
    assert args.profile == "hostile" and args.epochs == 3
    args = parser.parse_args(["run", "--drift-profile", "mild", "--drift-epoch", "2"])
    assert args.drift_profile == "mild" and args.drift_epoch == 2


# ----------------------------------------------------------------------
# Engine determinism + no-op isolation
# ----------------------------------------------------------------------

def _world_fingerprint(world) -> str:
    """Content hash over everything drift can touch."""
    h = hashlib.sha256()
    for post in sorted(world.dataset.posts(), key=lambda p: p.post_id):
        h.update(f"{post.post_id}|{post.content}\n".encode())
    for thread in sorted(world.dataset.threads(), key=lambda t: t.thread_id):
        h.update(f"{thread.thread_id}|{thread.board_id}|{thread.heading}\n".encode())
    for domain in sorted({s.domain for s in world.internet.dynamic_services()}):
        h.update(domain.encode())
    return h.hexdigest()


def test_engine_bit_deterministic():
    worlds = [
        build_world(seed=5, scale=SCALE, drift_profile="hostile", drift_epoch=2)
        for _ in range(2)
    ]
    a, b = worlds
    assert _world_fingerprint(a) == _world_fingerprint(b)
    assert a.drift_ledger.totals() == b.drift_ledger.totals()
    refs_a, refs_b = a.drift_ledger.refs, b.drift_ledger.refs
    assert sorted(refs_a) == sorted(refs_b)
    for key in refs_a:
        ra, rb = refs_a[key], refs_b[key]
        assert (ra.post_text, ra.target_url, ra.image_ids) == (
            rb.post_text, rb.target_url, rb.image_ids
        )


def test_engine_channels_fire_and_ledger_consistent():
    world = build_world(seed=5, scale=SCALE, drift_profile="hostile", drift_epoch=2)
    ledger = world.drift_ledger
    totals = ledger.totals()
    assert totals["n_reuploads"] > 0
    assert totals["n_obfuscated"] > 0
    assert totals["n_redirects"] > 0
    assert totals["n_domains_killed"] > 0
    assert totals["n_domains_minted"] == 8  # 4 hosts/epoch x 2 epochs
    assert totals["n_threads_migrated"] + totals["n_threads_retitled"] > 0
    # Re-uploaded refs: fresh target is live, post text names it (either
    # verbatim or through a later redirector/obfuscation rewrite).
    reuploaded = [ref for ref in ledger.refs.values() if ref.reuploaded]
    assert reuploaded
    for ref in reuploaded:
        hosted = world.internet.hosted(ref.target_url)
        assert hosted is not None
        post = world.dataset.post(ref.post_id)
        assert ref.post_text in post.content
    # Killed domains host nothing fetchable (DEFUNCT, or NOT_FOUND when a
    # re-upload had already retired the URL in an earlier epoch).
    for domain in ledger.dead_domains:
        for url in world.internet.urls_on(domain):
            assert world.internet.hosted(url).status in (
                FetchStatus.DEFUNCT,
                FetchStatus.NOT_FOUND,
            )
    # Migrated "move" threads left the eWhoring board and the keyword.
    moved = [tid for tid, mode in ledger.migrated_threads.items() if mode == "move"]
    for tid in moved:
        thread = world.dataset.thread(tid)
        board = world.dataset.board(thread.board_id)
        assert not board.is_ewhoring_board
        assert "ewhor" not in thread.heading_lower()


def test_epoch_zero_and_none_profile_are_noops():
    baseline = build_world(seed=8, scale=SCALE)
    for kwargs in (
        {"drift_profile": "none", "drift_epoch": 3},
        {"drift_profile": "hostile", "drift_epoch": 0},
    ):
        other = build_world(seed=8, scale=SCALE, **kwargs)
        assert _world_fingerprint(other) == _world_fingerprint(baseline)
        assert other.drift_ledger is not None
        assert other.drift_ledger.totals()["n_reuploads"] == 0


def test_none_profile_pipeline_bit_identical():
    """--drift-profile none is invisible: digest, quarantine, telemetry."""
    views = []
    for kwargs in ({}, {"drift_profile": "none", "drift_epoch": 2}):
        world = build_world(seed=7, scale=SCALE, payload_profile="dirty", **kwargs)
        telemetry = RunTelemetry()
        report = run_pipeline(world, telemetry=telemetry)
        views.append(
            {
                "digest": report.crawl.digest(),
                "quarantine": [
                    r.to_dict()
                    for r in (
                        report.quarantine.records
                        if report.quarantine is not None
                        else ()
                    )
                ],
                "telemetry": telemetry.deterministic_snapshot(),
            }
        )
    assert views[0] == views[1]


def test_apply_drift_rejects_negative_epoch():
    world = build_world(seed=3, scale=SCALE)
    with pytest.raises(ValueError, match="epoch"):
        apply_drift(world, drift_profile("mild"), epoch=-1, seed=0)


# ----------------------------------------------------------------------
# Defenses
# ----------------------------------------------------------------------

def test_radius_sweep_deterministic_and_bounded():
    first = sweep_hash_radius(drift_profile("hostile"), seed=42, n_samples=8)
    second = sweep_hash_radius(drift_profile("hostile"), seed=42, n_samples=8)
    assert first == second
    assert 0 <= first.radius <= 30
    assert first.false_positive_rate <= 0.01


def test_watchlist_selection_augments_keyword_base():
    world = build_world(seed=7, scale=SCALE)
    from repro.forum.query import ewhoring_threads

    base = ewhoring_threads(world.dataset)
    author = base[0].author_id
    selection = build_watchlist_selection({author})(world.dataset)
    base_ids = {t.thread_id for t in base}
    assert base_ids <= {t.thread_id for t in selection}
    extras = [t for t in selection if t.thread_id not in base_ids]
    assert all(t.author_id == author for t in extras)


# ----------------------------------------------------------------------
# Harness: decay curves are bit-identical across runs and workers
# ----------------------------------------------------------------------

def test_drift_report_identical_across_workers():
    reports = {
        workers: run_drift(
            "aggressive", epochs=1, seed=7, scale=SCALE, workers=workers
        ).as_dict()
        for workers in (1, 4)
    }
    assert reports[1] == reports[4]
    curves = reports[1]["recall_curves"]
    assert set(curves) == {"selection", "crawl", "abuse", "nsfv", "provenance"}
    assert all(len(curve) == 2 for curve in curves.values())


def test_drift_defenses_recover_recall():
    """Defenses-on dominates defenses-off on the decayed stages."""
    off = run_drift("aggressive", epochs=1, seed=7, scale=SCALE)
    on = run_drift(
        "aggressive", epochs=1, seed=7, scale=SCALE, defenses=DefenseConfig.full()
    )
    # Baselines agree: epoch 0 never applies defenses.
    for stage in ("selection", "crawl"):
        assert off.recall_curve(stage)[0] == on.recall_curve(stage)[0]
    off_final = {s: off.recall_curve(s)[-1] for s in ("selection", "crawl")}
    on_final = {s: on.recall_curve(s)[-1] for s in ("selection", "crawl")}
    assert any(off_final[s] < 1.0 for s in off_final), "no decay to recover from"
    for stage in off_final:
        assert on_final[stage] >= off_final[stage]
    assert sum(on_final.values()) > sum(off_final.values())
