"""Unit-level tests of the §5 earnings analyzer on a constructed world.

The integration tests exercise the analyzer through the full pipeline;
these tests build a minimal hand-wired dataset + internet so each
selection rule of §5.1 is verified in isolation.
"""

from datetime import datetime

import pytest

from repro.core import EarningsAnalyzer, NsfvClassifier
from repro.finance import Currency, PaymentPlatform
from repro.forum import Actor, Board, Forum, ForumDataset, Post, Thread
from repro.media import ImageKind, SyntheticImage, sample_latent
from repro.synth.earnings_gen import ProofPlan
from repro.vision import HashListService
from repro.web import HostingService, ServiceKind, SimulatedInternet

T0 = datetime(2016, 6, 1)

SERVICE = HostingService("imgur", "imgur.com", ServiceKind.IMAGE_SHARING, 1.0, 0.0, 0.0)


@pytest.fixture()
def setting(rng):
    """Dataset with one earnings thread, one proof-mention post, one
    decoy thread; internet hosting one proof, one chat screenshot, one
    indecent image."""
    ds = ForumDataset()
    ds.add_forum(Forum(1, "HF", has_ewhoring_board=True))
    ds.add_board(Board(10, 1, "eWhoring", is_ewhoring_board=True))
    ds.add_actor(Actor(100, 1, "earner", T0))
    ds.add_actor(Actor(101, 1, "seller", T0))

    net = SimulatedInternet(seed=1)

    def host(kind, **kwargs):
        image = SyntheticImage(host.counter, sample_latent(rng, kind, **kwargs))
        host.counter += 1
        url = net.host_on_service(SERVICE, image, T0, contains_nudity=kind.is_nude)
        return image, url

    host.counter = 1

    proof_img, proof_url = host(ImageKind.PROOF_SCREENSHOT)
    chat_img, chat_url = host(ImageKind.CHAT_SCREENSHOT)
    nude_img, nude_url = host(ImageKind.MODEL_NUDE, model_id=1)

    # Earnings thread (heading matches 'earn').
    t1 = Thread(1000, 10, 1, 100, "Post your earnings!", T0)
    ds.add_thread(t1)
    ds.add_post(Post(1, 1000, 100, T0, "share below", 0))
    ds.add_post(Post(2, 1000, 100, T0, f"made $200, proof {proof_url}", 1))
    ds.add_post(Post(3, 1000, 101, T0, f"look at this chat {chat_url}", 2))
    ds.add_post(Post(4, 1000, 101, T0, f"preview here {nude_url}", 3))

    # A TOP-ish thread with a 'proof' + trading-term post.
    t2 = Thread(1001, 10, 1, 101, "random ewhoring chat", T0)
    ds.add_thread(t2)
    ds.add_post(Post(5, 1001, 101, T0, "opener", 0))
    dup_img, dup_url = host(ImageKind.PROOF_SCREENSHOT)
    ds.add_post(Post(6, 1001, 101, T0,
                     f"selling my method, proof of sales: {dup_url}", 1))
    # A post with 'proof' but no trading term must NOT be selected.
    miss_img, miss_url = host(ImageKind.PROOF_SCREENSHOT)
    ds.add_post(Post(7, 1001, 100, T0, f"here is proof {miss_url}", 2))

    proofs = {
        proof_img.image_id: ProofPlan(
            date=T0, platform=PaymentPlatform.PAYPAL, currency=Currency.USD,
            transactions=((T0, 120.0), (T0, 80.0)), shows_transactions=True,
        ),
        dup_img.image_id: ProofPlan(
            date=T0, platform=PaymentPlatform.AMAZON_GIFT_CARD,
            currency=Currency.USD, transactions=((T0, 300.0),),
            shows_transactions=False,
        ),
    }
    return ds, net, proofs


class TestSelection:
    def run(self, setting):
        ds, net, proofs = setting
        analyzer = EarningsAnalyzer(
            ds, net, HashListService(), annotator=proofs.get
        )
        return analyzer.analyze()

    def test_earnings_thread_selected(self, setting):
        result = self.run(setting)
        assert result.n_threads_matched == 1  # only the 'earnings!' heading

    def test_proof_plus_trading_post_selected(self, setting):
        result = self.run(setting)
        # Links: 3 from the earnings thread + 1 from the proof-mention
        # post; the bare-'proof' post is not selected.
        assert result.n_unique_urls == 4

    def test_downloads_all_alive(self, setting):
        result = self.run(setting)
        assert result.n_downloaded == 4

    def test_nsfv_filters_the_nude(self, setting):
        result = self.run(setting)
        assert result.n_indecent_filtered == 1
        assert result.n_analyzable == 3

    def test_annotation_split(self, setting):
        result = self.run(setting)
        assert result.n_proofs == 2
        assert result.n_non_proofs == 1  # the chat screenshot

    def test_usd_totals(self, setting):
        result = self.run(setting)
        assert result.total_usd == pytest.approx(500.0)
        totals = result.per_actor_totals()
        assert totals[100] == pytest.approx(200.0)
        assert totals[101] == pytest.approx(300.0)

    def test_itemised_transactions(self, setting):
        result = self.run(setting)
        itemised = [r for r in result.records if r.shows_transactions]
        assert len(itemised) == 1
        assert itemised[0].transaction_usd == (120.0, 80.0)
        assert result.mean_transaction_usd() == pytest.approx(100.0)

    def test_platform_histogram(self, setting):
        result = self.run(setting)
        histogram = result.platform_histogram()
        assert histogram[PaymentPlatform.PAYPAL] == 1
        assert histogram[PaymentPlatform.AMAZON_GIFT_CARD] == 1

    def test_currency_conversion_uses_rates(self, setting, rng):
        ds, net, proofs = setting
        # Add a GBP proof: its USD value must exceed the face amount.
        image = SyntheticImage(999, sample_latent(rng, ImageKind.PROOF_SCREENSHOT))
        url = net.host_on_service(SERVICE, image, T0, contains_nudity=False)
        thread = ds.thread(1000)
        ds.add_post(Post(8, 1000, 100, T0, f"gbp earnings {url}", 4))
        proofs[999] = ProofPlan(
            date=T0, platform=PaymentPlatform.PAYPAL, currency=Currency.GBP,
            transactions=((T0, 100.0),), shows_transactions=True,
        )
        result = EarningsAnalyzer(ds, net, HashListService(), annotator=proofs.get).analyze()
        gbp_record = next(r for r in result.records if r.image_id == 999)
        assert gbp_record.total_usd > 110.0  # GBP > USD throughout the range
