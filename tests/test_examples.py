"""Smoke tests: every example script runs end-to-end at tiny scale."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

SCALED = [
    ("quickstart.py", "0.006"),
    ("image_provenance_study.py", "0.008"),
    ("financial_study.py", "0.008"),
    ("actor_study.py", "0.006"),
]


@pytest.mark.slow
class TestExamples:
    @pytest.mark.parametrize("script,scale", SCALED)
    def test_scaled_example_runs(self, script, scale):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / script), scale],
            capture_output=True, text=True, timeout=600,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout.strip()

    def test_safety_workflow_runs(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "safety_workflow.py")],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "reported to hotline" in result.stdout
        assert "NOT safe" in result.stdout
