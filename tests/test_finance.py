"""Tests for the money substrate: Money, rates, CE-heading parsing."""

from datetime import date, datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.finance import (
    Currency,
    ExchangeOffer,
    HistoricalRates,
    Money,
    PaymentPlatform,
    RateError,
    UNCLASSIFIED,
    canonical_currency,
    parse_exchange_heading,
)


class TestMoney:
    def test_addition_same_currency(self):
        total = Money(10.0, Currency.USD) + Money(5.0, Currency.USD)
        assert total.amount == 15.0

    def test_addition_mixed_currency_rejected(self):
        with pytest.raises(ValueError):
            Money(1.0, Currency.USD) + Money(1.0, Currency.EUR)

    def test_subtraction(self):
        assert (Money(10.0, Currency.GBP) - Money(4.0, Currency.GBP)).amount == 6.0

    def test_scaled(self):
        assert Money(10.0, Currency.USD).scaled(0.5).amount == 5.0

    def test_currency_type_checked(self):
        with pytest.raises(TypeError):
            Money(1.0, "USD")

    def test_str_fiat_and_crypto(self):
        assert "USD" in str(Money(1234.5, Currency.USD))
        assert "BTC" in str(Money(0.01, Currency.BTC))

    def test_crypto_flag(self):
        assert Currency.BTC.is_crypto
        assert not Currency.USD.is_crypto


class TestRates:
    RATES = HistoricalRates()

    def test_usd_identity(self):
        assert self.RATES.rate_to_usd(Currency.USD, date(2015, 6, 1)) == 1.0

    def test_fiat_near_base(self):
        rate = self.RATES.rate_to_usd(Currency.GBP, date(2014, 1, 1))
        assert 1.1 < rate < 1.8

    def test_rates_deterministic(self):
        d = date(2016, 3, 3)
        assert self.RATES.rate_to_usd(Currency.EUR, d) == self.RATES.rate_to_usd(Currency.EUR, d)

    def test_btc_growth_path(self):
        early = self.RATES.rate_to_usd(Currency.BTC, date(2010, 6, 1))
        mid = self.RATES.rate_to_usd(Currency.BTC, date(2014, 6, 1))
        late = self.RATES.rate_to_usd(Currency.BTC, date(2018, 6, 1))
        assert early < 5.0
        assert early < mid < late
        assert late > 500.0

    def test_out_of_range_date(self):
        with pytest.raises(RateError):
            self.RATES.rate_to_usd(Currency.EUR, date(2001, 1, 1))

    def test_datetime_accepted(self):
        value = self.RATES.rate_to_usd(Currency.EUR, datetime(2015, 1, 1, 12, 30))
        assert value > 0

    def test_convert_round_trip(self):
        when = date(2016, 5, 5)
        eur = Money(100.0, Currency.EUR)
        usd = self.RATES.convert(eur, when)
        back = self.RATES.convert(usd, when, target=Currency.EUR)
        assert back.amount == pytest.approx(100.0)

    def test_to_usd_shorthand(self):
        when = date(2016, 5, 5)
        assert self.RATES.to_usd(Money(3.0, Currency.USD), when) == pytest.approx(3.0)

    @given(st.integers(min_value=0, max_value=4500))
    @settings(max_examples=60)
    def test_all_rates_positive_and_finite(self, offset_days):
        from datetime import timedelta

        when = date(2008, 1, 1) + timedelta(days=offset_days)
        for currency in Currency:
            rate = self.RATES.rate_to_usd(currency, when)
            assert 0 < rate < 1e6


class TestCanonicalCurrency:
    @pytest.mark.parametrize("token,expected", [
        ("PayPal", "PayPal"),
        ("pp", "PayPal"),
        ("BTC", "BTC"),
        ("bitcoin", "BTC"),
        ("AGC", "AGC"),
        ("amazon gift card", "AGC"),
        ("$50 amazon", "AGC"),
        ("skrill", "others"),
        ("LTC", "others"),
        ("rare skins", "?"),
        ("", "?"),
        ("$100", "?"),
    ])
    def test_aliases(self, token, expected):
        assert canonical_currency(token) == expected


class TestParseExchangeHeading:
    def test_standard_format(self):
        offer = parse_exchange_heading("[H] PayPal [W] BTC")
        assert offer == ExchangeOffer("PayPal", "BTC")
        assert offer.parsed

    def test_amounts_stripped(self):
        offer = parse_exchange_heading("[H] $120 Amazon GC [W] 0.05 BTC")
        assert offer.offered == "AGC"
        assert offer.wanted == "BTC"

    def test_case_insensitive_tags(self):
        offer = parse_exchange_heading("[h] pp [w] bitcoin")
        assert offer == ExchangeOffer("PayPal", "BTC")

    def test_missing_tags(self):
        offer = parse_exchange_heading("quick exchange anyone?")
        assert offer.offered == UNCLASSIFIED
        assert offer.wanted == UNCLASSIFIED
        assert not offer.parsed

    def test_unknown_currency(self):
        offer = parse_exchange_heading("[H] rare skins [W] offers")
        assert offer.offered == UNCLASSIFIED

    def test_only_have_tag(self):
        offer = parse_exchange_heading("[H] PayPal - looking for offers")
        assert offer.offered == "PayPal"
        assert offer.wanted == UNCLASSIFIED

    @given(st.text(max_size=120))
    @settings(max_examples=80)
    def test_parser_total(self, heading):
        offer = parse_exchange_heading(heading)
        valid = {"PayPal", "BTC", "AGC", "others", UNCLASSIFIED}
        assert offer.offered in valid
        assert offer.wanted in valid
