"""Tests for the forum data model and dataset container."""

from datetime import datetime

import pytest

from repro.forum import (
    Actor,
    Board,
    DatasetError,
    Forum,
    ForumDataset,
    Post,
    Thread,
)

T0 = datetime(2015, 1, 1)


def make_minimal() -> ForumDataset:
    ds = ForumDataset()
    ds.add_forum(Forum(1, "TestForum"))
    ds.add_board(Board(10, 1, "General", category="Common"))
    ds.add_actor(Actor(100, 1, "alice", T0))
    ds.add_actor(Actor(101, 1, "bob", T0))
    ds.add_thread(Thread(1000, 10, 1, 100, "Hello world", T0))
    ds.add_post(Post(5000, 1000, 100, T0, "first", 0))
    ds.add_post(Post(5001, 1000, 101, T0, "reply", 1, quoted_post_id=5000))
    return ds


class TestModels:
    def test_forum_requires_name(self):
        with pytest.raises(ValueError):
            Forum(1, "")

    def test_actor_requires_username(self):
        with pytest.raises(ValueError):
            Actor(1, 1, "", T0)

    def test_heading_lower(self):
        thread = Thread(1, 1, 1, 1, "EWHORING Pack", T0)
        assert thread.heading_lower() == "ewhoring pack"

    def test_initial_post_flag(self):
        assert Post(1, 1, 1, T0, "x", 0).is_initial
        assert not Post(2, 1, 1, T0, "x", 3).is_initial


class TestIntegrity:
    def test_duplicate_forum_rejected(self):
        ds = make_minimal()
        with pytest.raises(DatasetError):
            ds.add_forum(Forum(1, "Again"))

    def test_board_requires_forum(self):
        ds = ForumDataset()
        with pytest.raises(DatasetError):
            ds.add_board(Board(1, 99, "Orphan"))

    def test_thread_requires_board(self):
        ds = make_minimal()
        with pytest.raises(DatasetError):
            ds.add_thread(Thread(2000, 999, 1, 100, "x", T0))

    def test_thread_forum_board_consistency(self):
        ds = make_minimal()
        ds.add_forum(Forum(2, "Other"))
        with pytest.raises(DatasetError):
            # Board 10 belongs to forum 1, not forum 2.
            ds.add_thread(Thread(2000, 10, 2, 100, "x", T0))

    def test_thread_requires_author(self):
        ds = make_minimal()
        with pytest.raises(DatasetError):
            ds.add_thread(Thread(2000, 10, 1, 999, "x", T0))

    def test_post_requires_thread(self):
        ds = make_minimal()
        with pytest.raises(DatasetError):
            ds.add_post(Post(6000, 9999, 100, T0, "x", 0))

    def test_post_position_must_be_sequential(self):
        ds = make_minimal()
        with pytest.raises(DatasetError):
            ds.add_post(Post(6000, 1000, 100, T0, "x", 5))

    def test_extend_dispatch(self):
        ds = ForumDataset()
        ds.extend([
            Forum(1, "F"),
            Board(2, 1, "B"),
            Actor(3, 1, "a", T0),
            Thread(4, 2, 1, 3, "h", T0),
            Post(5, 4, 3, T0, "c", 0),
        ])
        assert ds.n_posts == 1

    def test_extend_rejects_unknown(self):
        ds = ForumDataset()
        with pytest.raises(DatasetError):
            ds.extend(["not a record"])

    def test_validate_passes_on_consistent(self):
        make_minimal().validate()


class TestQueries:
    def test_counts(self):
        ds = make_minimal()
        assert (ds.n_forums, ds.n_boards, ds.n_actors, ds.n_threads, ds.n_posts) == (
            1, 1, 2, 1, 2,
        )

    def test_posts_in_thread_ordered(self):
        ds = make_minimal()
        posts = ds.posts_in_thread(1000)
        assert [p.position for p in posts] == [0, 1]

    def test_initial_post(self):
        ds = make_minimal()
        assert ds.initial_post(1000).post_id == 5000

    def test_initial_post_missing_thread(self):
        ds = make_minimal()
        assert ds.initial_post(424242) is None

    def test_replies_exclude_opener(self):
        ds = make_minimal()
        assert [p.post_id for p in ds.replies(1000)] == [5001]

    def test_reply_count(self):
        ds = make_minimal()
        assert ds.reply_count(1000) == 1
        assert ds.reply_count(9999) == 0

    def test_posts_by_actor(self):
        ds = make_minimal()
        assert [p.post_id for p in ds.posts_by_actor(101)] == [5001]

    def test_span(self):
        ds = make_minimal()
        first, last = ds.span()
        assert first == last == T0

    def test_span_empty(self):
        assert ForumDataset().span() is None

    def test_thread_participants_order_and_dedup(self):
        ds = make_minimal()
        ds.add_post(Post(5002, 1000, 100, T0, "again", 2))
        assert ds.thread_participants(1000) == [100, 101]

    def test_threads_by_forum(self):
        ds = make_minimal()
        assert [t.thread_id for t in ds.threads(1)] == [1000]
        assert list(ds.threads(999)) == []

    def test_maybe_post(self):
        ds = make_minimal()
        assert ds.maybe_post(5000) is not None
        assert ds.maybe_post(1) is None
