"""Tests for the §3 dataset-selection queries."""

from datetime import datetime

import pytest

from repro.forum import (
    Actor,
    Board,
    Forum,
    ForumDataset,
    Post,
    Thread,
    ewhoring_threads,
    forum_summaries,
    threads_with_heading_keywords,
)

T0 = datetime(2012, 3, 1)
T1 = datetime(2013, 8, 1)


@pytest.fixture()
def dataset() -> ForumDataset:
    ds = ForumDataset()
    ds.add_forum(Forum(1, "HF", has_ewhoring_board=True))
    ds.add_board(Board(10, 1, "eWhoring", is_ewhoring_board=True))
    ds.add_board(Board(11, 1, "Gaming", category="Gaming"))
    ds.add_actor(Actor(100, 1, "a", T0))
    # Board-selected thread (no keyword needed).
    ds.add_thread(Thread(1000, 10, 1, 100, "Fresh pack inside", T0))
    ds.add_post(Post(1, 1000, 100, T0, "x", 0))
    # Keyword-selected thread on a non-dedicated board.
    ds.add_thread(Thread(1001, 11, 1, 100, "Is EWHORING allowed here?", T1))
    ds.add_post(Post(2, 1001, 100, T1, "x", 0))
    # Hyphenated variant.
    ds.add_thread(Thread(1002, 11, 1, 100, "e-whoring tips", T1))
    ds.add_post(Post(3, 1002, 100, T1, "x", 0))
    # Unrelated thread.
    ds.add_thread(Thread(1003, 11, 1, 100, "Favourite games of 2013", T1))
    ds.add_post(Post(4, 1003, 100, T1, "x", 0))
    return ds


class TestKeywordSearch:
    def test_case_insensitive(self, dataset):
        hits = threads_with_heading_keywords(dataset, ["ewhor", "e-whor"])
        assert {t.thread_id for t in hits} == {1001, 1002}

    def test_hyphenated_variant_needs_own_keyword(self, dataset):
        # 'ewhor' alone does not match 'e-whoring' — both Table 2 row 1
        # keywords are required, as the paper uses them.
        hits = threads_with_heading_keywords(dataset, ["ewhor"])
        assert {t.thread_id for t in hits} == {1001}

    def test_no_hits(self, dataset):
        assert threads_with_heading_keywords(dataset, ["zzzyyy"]) == []

    def test_forum_filter(self, dataset):
        assert threads_with_heading_keywords(dataset, ["ewhor"], forum_id=99) == []


class TestEwhoringSelection:
    def test_board_and_keyword_union(self, dataset):
        selected = {t.thread_id for t in ewhoring_threads(dataset)}
        assert selected == {1000, 1001, 1002}

    def test_unrelated_excluded(self, dataset):
        selected = {t.thread_id for t in ewhoring_threads(dataset)}
        assert 1003 not in selected

    def test_no_duplicates_for_board_thread_with_keyword(self, dataset):
        # A dedicated-board thread whose heading also matches must appear once.
        dataset.add_thread(Thread(1004, 10, 1, 100, "ewhoring pack", T1))
        dataset.add_post(Post(5, 1004, 100, T1, "x", 0))
        ids = [t.thread_id for t in ewhoring_threads(dataset)]
        assert ids.count(1004) == 1


class TestForumSummaries:
    def test_summary_counts(self, dataset):
        summaries = forum_summaries(dataset)
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary.forum_name == "HF"
        assert summary.n_threads == 3
        assert summary.n_posts == 3
        assert summary.n_actors == 1

    def test_first_post_stamp(self, dataset):
        summary = forum_summaries(dataset)[0]
        assert summary.first_post == "03/12"

    def test_sorted_by_thread_count(self, world):
        summaries = forum_summaries(world.dataset)
        counts = [s.n_threads for s in summaries]
        assert counts == sorted(counts, reverse=True)

    def test_hackforums_dominates(self, world):
        summaries = forum_summaries(world.dataset)
        assert summaries[0].forum_name == "Hackforums"
        # Table 1 shape: Hackforums carries the overwhelming majority.
        total = sum(s.n_threads for s in summaries)
        assert summaries[0].n_threads / total > 0.85

    def test_bhw_present_but_small(self, world):
        names = {s.forum_name: s for s in forum_summaries(world.dataset)}
        assert "BlackHatWorld" in names
        assert names["BlackHatWorld"].n_threads < names["OGUsers"].n_threads
