"""Tests for dataset descriptive statistics."""

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.forum import Actor, Board, Forum, ForumDataset, Post, Thread
from repro.forum.stats import DatasetStats, Distribution, dataset_stats, gini

T0 = datetime(2015, 1, 1)


class TestGini:
    def test_equal_sample_zero(self):
        assert gini([5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_sample_high(self):
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1, 2])

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_bounds(self, values):
        value = gini(values)
        assert -1e-9 <= value < 1.0

    def test_scale_invariant(self):
        sample = [1, 4, 9, 16]
        assert gini(sample) == pytest.approx(gini([x * 7 for x in sample]))


class TestDistribution:
    def test_of_sample(self):
        dist = Distribution.of([1, 2, 3, 4, 10])
        assert dist.n == 5
        assert dist.mean == pytest.approx(4.0)
        assert dist.median == 3.0
        assert dist.maximum == 10.0

    def test_empty(self):
        dist = Distribution.of([])
        assert dist.n == 0
        assert dist.mean == 0.0


class TestDatasetStats:
    def make(self):
        ds = ForumDataset()
        ds.add_forum(Forum(1, "F"))
        ds.add_board(Board(2, 1, "A"))
        ds.add_board(Board(3, 1, "B"))
        ds.add_actor(Actor(10, 1, "x", T0))
        ds.add_actor(Actor(11, 1, "y", T0))
        ds.add_thread(Thread(100, 2, 1, 10, "t1", T0))
        ds.add_post(Post(1000, 100, 10, T0, "a", 0))
        ds.add_post(Post(1001, 100, 11, T0, "b", 1))
        ds.add_post(Post(1002, 100, 11, T0, "c", 2))
        ds.add_thread(Thread(101, 3, 1, 11, "t2", T0))
        ds.add_post(Post(1003, 101, 11, T0, "d", 0))
        return ds

    def test_counts(self):
        stats = dataset_stats(self.make())
        assert stats.n_threads == 2
        assert stats.n_posts == 4
        assert stats.n_actors == 2
        assert stats.posts_per_thread_mean == pytest.approx(2.0)

    def test_per_board(self):
        stats = dataset_stats(self.make())
        assert stats.posts_per_board == {"A": 3, "B": 1}

    def test_selection_restricts(self):
        ds = self.make()
        selection = [ds.thread(100)]
        stats = dataset_stats(ds, selection)
        assert stats.n_threads == 1
        assert stats.n_posts == 3

    def test_world_heavy_tail(self, world, report):
        """The generated corpus must show heavy-tailed participation:
        a high Gini on posts-per-actor, as real forums do."""
        stats = dataset_stats(world.dataset, report.selection)
        assert stats.posts_per_actor.gini > 0.4
        assert stats.thread_length.maximum > 5 * stats.thread_length.median
        assert stats.n_posts == sum(
            len(world.dataset.posts_in_thread(t.thread_id)) for t in report.selection
        )
