"""Tests for JSONL dataset persistence."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.forum import (
    Actor,
    Board,
    Forum,
    ForumDataset,
    Post,
    Thread,
    load_dataset,
    save_dataset,
)
from repro.forum.dataset import DatasetError
from repro.store.errors import StoreCorruptionError

T0 = datetime(2014, 6, 15, 12, 30)


@pytest.fixture()
def sample_dataset() -> ForumDataset:
    ds = ForumDataset()
    ds.add_forum(Forum(1, "F", has_ewhoring_board=True))
    ds.add_board(Board(2, 1, "eWhoring", category="Market", is_ewhoring_board=True))
    ds.add_actor(Actor(3, 1, "carol", T0))
    ds.add_thread(Thread(4, 2, 1, 3, "pack thread", T0))
    ds.add_post(Post(5, 4, 3, T0, "content with ünïcode", 0))
    ds.add_post(Post(6, 4, 3, T0, "quoting", 1, quoted_post_id=5))
    return ds


class TestRoundTrip:
    def test_counts_preserved(self, sample_dataset, tmp_path):
        path = tmp_path / "ds.jsonl"
        n = save_dataset(sample_dataset, path)
        assert n == 6
        loaded = load_dataset(path)
        assert loaded.n_forums == 1
        assert loaded.n_posts == 2

    def test_record_fields_preserved(self, sample_dataset, tmp_path):
        path = tmp_path / "ds.jsonl"
        save_dataset(sample_dataset, path)
        loaded = load_dataset(path)
        assert loaded.forum(1).has_ewhoring_board
        assert loaded.board(2).is_ewhoring_board
        assert loaded.actor(3).username == "carol"
        assert loaded.thread(4).heading == "pack thread"
        post = loaded.post(5)
        assert post.content == "content with ünïcode"
        assert post.created_at == T0
        assert loaded.post(6).quoted_post_id == 5

    def test_double_round_trip_identical(self, sample_dataset, tmp_path):
        p1 = tmp_path / "one.jsonl"
        p2 = tmp_path / "two.jsonl"
        save_dataset(sample_dataset, p1)
        save_dataset(load_dataset(p1), p2)
        assert p1.read_text() == p2.read_text()

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(Exception):
            load_dataset(path)

    def test_blank_lines_ignored(self, sample_dataset, tmp_path):
        path = tmp_path / "ds.jsonl"
        save_dataset(sample_dataset, path)
        path.write_text(path.read_text() + "\n\n")
        loaded = load_dataset(path)
        assert loaded.n_posts == 2


def aware_dataset(offset_hours: int = 2) -> ForumDataset:
    tz = timezone(timedelta(hours=offset_hours))
    t0 = T0.replace(tzinfo=tz)
    ds = ForumDataset()
    ds.add_forum(Forum(1, "F", has_ewhoring_board=True))
    ds.add_board(Board(2, 1, "eWhoring", category="Market", is_ewhoring_board=True))
    ds.add_actor(Actor(3, 1, "carol", t0))
    ds.add_thread(Thread(4, 2, 1, 3, "pack thread", t0))
    ds.add_post(Post(5, 4, 3, t0, "aware post", 0))
    return ds


class TestTimezoneContract:
    def test_uniformly_aware_round_trips_exactly(self, tmp_path):
        ds = aware_dataset()
        path = tmp_path / "aware.jsonl"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        post = loaded.post(5)
        assert post.created_at == ds.post(5).created_at
        assert post.created_at.tzinfo is not None
        # exact, not merely equal-instant: the offset itself survives
        assert post.created_at.utcoffset() == timedelta(hours=2)
        assert loaded.actor(3).registered_at == ds.actor(3).registered_at

    def test_mixed_naive_and_aware_rejected_at_save(self, tmp_path):
        ds = aware_dataset()
        ds.add_post(Post(6, 4, 3, T0, "naive straggler", 1))  # no tzinfo
        path = tmp_path / "mixed.jsonl"
        with pytest.raises(DatasetError, match="mixed naive"):
            save_dataset(ds, path)

    def test_rejected_save_leaves_no_partial_file(self, tmp_path):
        ds = aware_dataset()
        ds.add_post(Post(6, 4, 3, T0, "naive straggler", 1))
        path = tmp_path / "mixed.jsonl"
        with pytest.raises(DatasetError):
            save_dataset(ds, path)
        assert not path.exists()


class TestCorruptionContract:
    def test_garbage_json_raises_typed_with_line(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text('{"kind": "forum", "forum_id": 1, "name": "F", '
                        '"has_ewhoring_board": true, "bans_ewhoring": false}\n'
                        "{{{not json at all\n")
        with pytest.raises(StoreCorruptionError, match="line 2"):
            load_dataset(path)

    def test_truncated_record_raises_typed(self, sample_dataset, tmp_path):
        path = tmp_path / "trunc.jsonl"
        save_dataset(sample_dataset, path)
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        with pytest.raises(StoreCorruptionError):
            load_dataset(path)

    def test_malformed_field_raises_typed(self, tmp_path):
        path = tmp_path / "badfield.jsonl"
        path.write_text('{"kind": "forum", "forum_id": 1, "name": "F", '
                        '"has_ewhoring_board": true, "bans_ewhoring": false}\n'
                        '{"kind": "actor", "actor_id": 2, "forum_id": 1, '
                        '"username": "u", "registered_at": "not-a-date"}\n')
        with pytest.raises(StoreCorruptionError, match="line 2"):
            load_dataset(path)

    def test_integrity_violation_raises_typed(self, tmp_path):
        path = tmp_path / "dangling.jsonl"
        path.write_text('{"kind": "forum", "forum_id": 1, "name": "F", '
                        '"has_ewhoring_board": true, "bans_ewhoring": false}\n'
                        '{"kind": "actor", "actor_id": 2, "forum_id": 99, '
                        '"username": "u", "registered_at": "2014-06-15T12:30:00"}\n')
        with pytest.raises(StoreCorruptionError):
            load_dataset(path)


class TestWorldRoundTrip:
    def test_generated_world_round_trips(self, world, tmp_path):
        path = tmp_path / "world.jsonl"
        save_dataset(world.dataset, path)
        loaded = load_dataset(path)
        assert loaded.n_threads == world.dataset.n_threads
        assert loaded.n_posts == world.dataset.n_posts
        assert loaded.n_actors == world.dataset.n_actors
