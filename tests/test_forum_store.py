"""Tests for JSONL dataset persistence."""

from datetime import datetime

import pytest

from repro.forum import (
    Actor,
    Board,
    Forum,
    ForumDataset,
    Post,
    Thread,
    load_dataset,
    save_dataset,
)

T0 = datetime(2014, 6, 15, 12, 30)


@pytest.fixture()
def sample_dataset() -> ForumDataset:
    ds = ForumDataset()
    ds.add_forum(Forum(1, "F", has_ewhoring_board=True))
    ds.add_board(Board(2, 1, "eWhoring", category="Market", is_ewhoring_board=True))
    ds.add_actor(Actor(3, 1, "carol", T0))
    ds.add_thread(Thread(4, 2, 1, 3, "pack thread", T0))
    ds.add_post(Post(5, 4, 3, T0, "content with ünïcode", 0))
    ds.add_post(Post(6, 4, 3, T0, "quoting", 1, quoted_post_id=5))
    return ds


class TestRoundTrip:
    def test_counts_preserved(self, sample_dataset, tmp_path):
        path = tmp_path / "ds.jsonl"
        n = save_dataset(sample_dataset, path)
        assert n == 6
        loaded = load_dataset(path)
        assert loaded.n_forums == 1
        assert loaded.n_posts == 2

    def test_record_fields_preserved(self, sample_dataset, tmp_path):
        path = tmp_path / "ds.jsonl"
        save_dataset(sample_dataset, path)
        loaded = load_dataset(path)
        assert loaded.forum(1).has_ewhoring_board
        assert loaded.board(2).is_ewhoring_board
        assert loaded.actor(3).username == "carol"
        assert loaded.thread(4).heading == "pack thread"
        post = loaded.post(5)
        assert post.content == "content with ünïcode"
        assert post.created_at == T0
        assert loaded.post(6).quoted_post_id == 5

    def test_double_round_trip_identical(self, sample_dataset, tmp_path):
        p1 = tmp_path / "one.jsonl"
        p2 = tmp_path / "two.jsonl"
        save_dataset(sample_dataset, p1)
        save_dataset(load_dataset(p1), p2)
        assert p1.read_text() == p2.read_text()

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(Exception):
            load_dataset(path)

    def test_blank_lines_ignored(self, sample_dataset, tmp_path):
        path = tmp_path / "ds.jsonl"
        save_dataset(sample_dataset, path)
        path.write_text(path.read_text() + "\n\n")
        loaded = load_dataset(path)
        assert loaded.n_posts == 2


class TestWorldRoundTrip:
    def test_generated_world_round_trips(self, world, tmp_path):
        path = tmp_path / "world.jsonl"
        save_dataset(world.dataset, path)
        loaded = load_dataset(path)
        assert loaded.n_threads == world.dataset.n_threads
        assert loaded.n_posts == world.dataset.n_posts
        assert loaded.n_actors == world.dataset.n_actors
