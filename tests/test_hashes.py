"""Tests for the alternative perceptual hashes (aHash / dHash)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media import ImageKind, SyntheticImage, apply_transform, sample_latent
from repro.vision import hamming_distance
from repro.vision.hashes import HASH_FUNCTIONS, average_hash, difference_hash


def render(rng, kind=ImageKind.MODEL_NUDE, model_id=1):
    return SyntheticImage(0, sample_latent(rng, kind, model_id=model_id)).pixels


ALL_HASHES = sorted(HASH_FUNCTIONS.items())


class TestBasics:
    @pytest.mark.parametrize("name,fn", ALL_HASHES)
    def test_deterministic(self, name, fn, rng):
        pixels = render(rng)
        assert fn(pixels) == fn(pixels)

    @pytest.mark.parametrize("name,fn", ALL_HASHES)
    def test_64_bit(self, name, fn, rng):
        value = fn(render(rng))
        assert 0 <= value < 2**64

    @pytest.mark.parametrize("name,fn", ALL_HASHES)
    def test_distinct_images_differ(self, name, fn, rng):
        a = fn(render(rng, model_id=1))
        b = fn(render(rng, model_id=2))
        assert hamming_distance(a, b) > 5

    @pytest.mark.parametrize("name,fn", ALL_HASHES)
    def test_recompression_robust(self, name, fn, rng):
        pixels = render(rng)
        out = apply_transform("recompress", pixels, seed=2)
        assert hamming_distance(fn(pixels), fn(out)) <= 8

    def test_ahash_brightness_shift_sensitivity(self, rng):
        # aHash thresholds at the mean, so a global shift is benign.
        pixels = render(rng)
        brighter = np.clip(pixels + 0.05, 0.0, 1.0)
        assert hamming_distance(average_hash(pixels), average_hash(brighter)) <= 10

    def test_dhash_row_structure(self):
        # A pure horizontal gradient has every difference positive.
        gradient = np.tile(np.linspace(0, 1, 64), (64, 1))
        pixels = np.stack([gradient] * 3, axis=2)
        assert difference_hash(pixels) == 2**64 - 1

    def test_ahash_flat_image(self):
        flat = np.full((32, 32, 3), 0.5)
        # No pixel exceeds the mean strictly: all bits zero.
        assert average_hash(flat) == 0

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_all_hashes_total_on_random_renders(self, seed):
        rng = np.random.default_rng(seed)
        pixels = render(rng, ImageKind.LANDSCAPE, model_id=None)
        for name, fn in HASH_FUNCTIONS.items():
            value = fn(pixels)
            assert 0 <= value < 2**64, name
