"""Tests for the §8 intervention simulations."""

from datetime import datetime

import pytest

from repro.core import (
    BlacklistIntervention,
    payment_account_takedown,
    regulate_gift_card_exchange,
)
from repro.core.earnings import EarningsResult, ProofRecord
from repro.finance import Currency, PaymentPlatform
from repro.media import ImageKind, Pack, SyntheticImage, apply_transform, sample_latent
from repro.web import LinkRecord, Url
from repro.web.crawler import CrawlResult, CrawlStats, CrawledImage, content_digest

T0 = datetime(2017, 3, 1)


def crawled(image, pack_id=None):
    return CrawledImage(
        image=image,
        digest=content_digest(image),
        link=LinkRecord(url=Url("mediafire.com", f"/x{image.image_id}"), posted_at=T0),
        pack_id=pack_id,
    )


def make_images(rng, n, start_id=0, model_id=1):
    return [
        SyntheticImage(start_id + i,
                       sample_latent(rng, ImageKind.MODEL_NUDE, model_id=model_id))
        for i in range(n)
    ]


class TestBlacklist:
    def test_blocks_seeded_images(self, rng):
        images = make_images(rng, 4)
        blacklist = BlacklistIntervention()
        added = blacklist.seed_from_images([crawled(i) for i in images])
        assert added == 4
        for image in images:
            assert blacklist.blocks(image.pixels)

    def test_duplicate_seeds_collapsed(self, rng):
        image = make_images(rng, 1)[0]
        blacklist = BlacklistIntervention()
        added = blacklist.seed_from_images([crawled(image), crawled(image)])
        assert added == 1

    def test_unknown_image_passes(self, rng):
        blacklist = BlacklistIntervention()
        blacklist.seed_from_images([crawled(i) for i in make_images(rng, 3)])
        fresh = make_images(rng, 1, start_id=50, model_id=9)[0]
        assert not blacklist.blocks(fresh.pixels)

    def test_recompressed_copy_still_blocked(self, rng):
        image = make_images(rng, 1)[0]
        blacklist = BlacklistIntervention()
        blacklist.seed_from_images([crawled(image)])
        recompressed = apply_transform("recompress", image.pixels, seed=3)
        assert blacklist.blocks(recompressed)

    def test_mirror_evades(self, rng):
        image = make_images(rng, 1)[0]
        blacklist = BlacklistIntervention()
        blacklist.seed_from_images([crawled(image)])
        mirrored = apply_transform("mirror", image.pixels)
        assert not blacklist.blocks(mirrored)

    def test_empty_blacklist_blocks_nothing(self, rng):
        image = make_images(rng, 1)[0]
        assert not BlacklistIntervention().blocks(image.pixels)

    def test_evaluate_on_future_crawl(self, rng):
        known = make_images(rng, 6)
        fresh = make_images(rng, 6, start_id=100, model_id=2)
        blacklist = BlacklistIntervention()
        blacklist.seed_from_images([crawled(i) for i in known])

        # Future crawl: one pack recycling known images, one fresh pack.
        recycled_pack = Pack(pack_id=1, model_id=1, images=known)
        fresh_pack = Pack(pack_id=2, model_id=2, images=fresh)
        future = CrawlResult(
            preview_images=[],
            pack_images=[crawled(i, pack_id=1) for i in known]
            + [crawled(i, pack_id=2) for i in fresh],
            packs=[recycled_pack, fresh_pack],
            stats=CrawlStats(),
        )
        outcome = blacklist.evaluate_on_future_crawl(future)
        assert outcome.n_images_blocked == 6
        assert outcome.n_packs_disrupted == 1
        assert outcome.block_rate == pytest.approx(0.5)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            BlacklistIntervention(radius=70)


def make_earnings(actor_totals):
    """EarningsResult stub: actor -> list of proof totals (USD)."""
    records = []
    image_id = 0
    for actor_id, totals in actor_totals.items():
        for i, total in enumerate(totals):
            records.append(
                ProofRecord(
                    image_id=image_id,
                    digest=str(image_id),
                    post_id=image_id,
                    author_id=actor_id,
                    posted_at=T0.replace(month=1 + i % 12),
                    platform=PaymentPlatform.PAYPAL,
                    currency=Currency.USD,
                    n_transactions=1,
                    shows_transactions=False,
                    total_usd=total,
                )
            )
            image_id += 1
    return EarningsResult(
        n_threads_matched=0, n_posts_with_links=0, n_unique_urls=0,
        n_downloaded=len(records), n_abuse_matched=0, n_indecent_filtered=0,
        n_analyzable=len(records), records=records, n_non_proofs=0,
    )


class TestPaymentTakedown:
    def test_zero_rate_changes_nothing(self):
        earnings = make_earnings({1: [100.0, 200.0], 2: [50.0]})
        outcome = payment_account_takedown(earnings, detection_rate=0.0)
        assert outcome.n_actors_hit == 0
        assert outcome.income_reduction == 0.0

    def test_full_rate_hits_heavy_earners(self):
        earnings = make_earnings({1: [5000.0] * 6, 2: [10.0]})
        outcome = payment_account_takedown(earnings, detection_rate=1.0, seed=4)
        assert outcome.n_actors_hit >= 1
        assert outcome.income_after_usd < outcome.income_before_usd

    def test_monotone_in_rate(self):
        earnings = make_earnings({i: [500.0] * 4 for i in range(30)})
        mild = payment_account_takedown(earnings, detection_rate=0.2, seed=7)
        harsh = payment_account_takedown(earnings, detection_rate=0.9, seed=7)
        assert harsh.income_reduction >= mild.income_reduction

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            payment_account_takedown(make_earnings({}), detection_rate=1.5)

    def test_empty_earnings(self):
        outcome = payment_account_takedown(make_earnings({}), detection_rate=0.5)
        assert outcome.n_actors == 0


class TestCurrencyRegulation:
    def test_blocks_agc_to_btc(self, world):
        table = None  # unused by the heading-based path
        outcome = regulate_gift_card_exchange(
            world.dataset, table,
            headings=["[H] AGC [W] BTC", "[H] PayPal [W] BTC", "[H] AGC [W] PayPal"],
        )
        assert outcome.n_blocked == 1
        assert outcome.agc_to_crypto_blocked == 1
        assert outcome.blocked_share == pytest.approx(1 / 3)

    def test_world_ce_board(self, world, report):
        outcome = regulate_gift_card_exchange(world.dataset, report.currency_exchange)
        assert outcome.n_threads > 0
        assert 0 <= outcome.blocked_share < 0.6
