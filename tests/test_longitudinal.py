"""Tests for the longitudinal analysis module."""

from datetime import datetime

import pytest

from repro.core.longitudinal import (
    ActivityTimeline,
    MonthlySeries,
    activity_timeline,
    new_actor_series,
)
from repro.forum import Actor, Board, Forum, ForumDataset, Post, Thread


class TestMonthlySeries:
    def test_add_and_total(self):
        series = MonthlySeries("x")
        series.add(datetime(2015, 3, 10))
        series.add(datetime(2015, 3, 20))
        series.add(datetime(2016, 1, 1), amount=3)
        assert series.counts == {"2015-03": 2, "2016-01": 3}
        assert series.total == 5

    def test_months_sorted(self):
        series = MonthlySeries("x")
        series.add(datetime(2016, 1, 1))
        series.add(datetime(2014, 6, 1))
        assert series.months() == ["2014-06", "2016-01"]

    def test_yearly(self):
        series = MonthlySeries("x")
        series.add(datetime(2015, 1, 1))
        series.add(datetime(2015, 12, 1))
        series.add(datetime(2016, 1, 1))
        assert series.yearly() == {"2015": 2, "2016": 1}

    def test_peak_month(self):
        series = MonthlySeries("x")
        assert series.peak_month() is None
        series.add(datetime(2015, 1, 1))
        series.add(datetime(2015, 2, 1), amount=4)
        assert series.peak_month() == ("2015-02", 4)

    def test_cumulative_monotone(self):
        series = MonthlySeries("x")
        for month in (1, 3, 5):
            series.add(datetime(2015, month, 1), amount=month)
        cumulative = [count for _, count in series.cumulative()]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == series.total


def tiny_dataset():
    ds = ForumDataset()
    ds.add_forum(Forum(1, "F", has_ewhoring_board=True))
    ds.add_board(Board(2, 1, "eWhoring", is_ewhoring_board=True))
    ds.add_actor(Actor(10, 1, "a", datetime(2010, 1, 1)))
    ds.add_actor(Actor(11, 1, "b", datetime(2012, 1, 1)))
    t1 = Thread(100, 2, 1, 10, "pack", datetime(2010, 5, 1))
    t2 = Thread(101, 2, 1, 11, "pack 2", datetime(2014, 5, 1))
    ds.add_thread(t1)
    ds.add_thread(t2)
    ds.add_post(Post(1000, 100, 10, datetime(2010, 5, 1), "x", 0))
    ds.add_post(Post(1001, 100, 11, datetime(2010, 6, 1), "y", 1))
    ds.add_post(Post(1002, 101, 11, datetime(2014, 5, 1), "z", 0))
    return ds


class TestActivityTimeline:
    def test_counts(self):
        timeline = activity_timeline(tiny_dataset())
        assert timeline.threads.total == 2
        assert timeline.posts.total == 3
        assert timeline.first_post == datetime(2010, 5, 1)
        assert timeline.last_post == datetime(2014, 5, 1)
        assert timeline.span_years == pytest.approx(4.0, abs=0.1)

    def test_per_forum_series(self):
        timeline = activity_timeline(tiny_dataset())
        assert timeline.per_forum_posts["F"].total == 3

    def test_empty_selection(self):
        timeline = activity_timeline(tiny_dataset(), selection=[])
        assert timeline.posts.total == 0
        assert timeline.first_post is None
        assert timeline.span_years == 0.0

    def test_growth_ratio_short_series(self):
        timeline = activity_timeline(tiny_dataset())
        assert timeline.growth_ratio() == 1.0  # fewer than 6 months of data

    def test_world_timeline(self, world, report):
        timeline = activity_timeline(world.dataset, report.selection)
        assert timeline.posts.total == sum(
            len(world.dataset.posts_in_thread(t.thread_id)) for t in report.selection
        )
        assert timeline.span_years > 8.0
        assert timeline.growth_ratio() > 1.0


class TestNewActorSeries:
    def test_first_appearance_counted_once(self):
        series = new_actor_series(tiny_dataset())
        # Actor 10 first appears 2010-05; actor 11 in 2010-06 (reply),
        # not in 2014 (their later thread).
        assert series.counts == {"2010-05": 1, "2010-06": 1}

    def test_world_total_equals_actor_count(self, world, report):
        series = new_actor_series(world.dataset, report.selection)
        participants = {
            p.author_id
            for t in report.selection
            for p in world.dataset.posts_in_thread(t.thread_id)
        }
        assert series.total == len(participants)
