"""Tests for the synthetic image substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media import (
    DEFAULT_SIZE,
    EVASION_TRANSFORMS,
    ImageKind,
    ImageLatent,
    Pack,
    SyntheticImage,
    apply_transform,
    pack_stage_mix,
    render_latent,
    sample_latent,
    skin_tone_for_model,
    transform_names,
)


def latent_for(kind=ImageKind.MODEL_NUDE, seed=42, **kwargs):
    defaults = dict(
        visual_seed=seed,
        kind=kind,
        skin_fraction=0.4 if kind.is_model else 0.0,
        word_count=0 if kind.is_model else 30,
        model_id=1 if kind.is_model else None,
    )
    defaults.update(kwargs)
    return ImageLatent(**defaults)


class TestLatent:
    def test_validation_skin_fraction(self):
        with pytest.raises(ValueError):
            latent_for(skin_fraction=1.5)

    def test_validation_word_count(self):
        with pytest.raises(ValueError):
            latent_for(word_count=-1)

    def test_validation_size(self):
        with pytest.raises(ValueError):
            latent_for(size=4)

    def test_with_transform_appends(self):
        lat = latent_for().with_transform("mirror").with_transform("watermark")
        assert lat.transform_chain == ("mirror", "watermark")

    def test_kind_flags(self):
        assert ImageKind.MODEL_SEXUAL.is_nude
        assert not ImageKind.MODEL_DRESSED.is_nude
        assert ImageKind.PROOF_SCREENSHOT.is_screenshot
        assert ImageKind.MODEL_DRESSED.is_model
        assert not ImageKind.LANDSCAPE.is_model

    def test_sample_latent_respects_kind(self, rng):
        lat = sample_latent(rng, ImageKind.PROOF_SCREENSHOT)
        assert lat.word_count >= 25
        assert lat.skin_fraction == 0.0


class TestRendering:
    def test_deterministic(self):
        a = render_latent(latent_for())
        b = render_latent(latent_for())
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = render_latent(latent_for(seed=1))
        b = render_latent(latent_for(seed=2))
        assert not np.array_equal(a, b)

    def test_shape_and_range(self):
        pixels = render_latent(latent_for())
        assert pixels.shape == (DEFAULT_SIZE, DEFAULT_SIZE, 3)
        assert pixels.min() >= 0.0 and pixels.max() <= 1.0

    def test_float32_output(self):
        assert render_latent(latent_for()).dtype == np.float32

    def test_transform_chain_applied(self):
        base = render_latent(latent_for())
        mirrored = render_latent(latent_for().with_transform("mirror"))
        assert np.allclose(mirrored, base[:, ::-1, :], atol=1e-6)

    def test_model_tone_consistency(self):
        tone_a = skin_tone_for_model(7)
        tone_b = skin_tone_for_model(7)
        assert np.array_equal(tone_a, tone_b)
        assert not np.array_equal(tone_a, skin_tone_for_model(8))

    @given(st.sampled_from(list(ImageKind)), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_any_kind_renders_in_range(self, kind, seed):
        rng = np.random.default_rng(seed)
        lat = sample_latent(rng, kind, model_id=1 if kind.is_model else None)
        pixels = render_latent(lat)
        assert pixels.min() >= 0.0 and pixels.max() <= 1.0


class TestSyntheticImage:
    def test_lazy_and_cached(self):
        image = SyntheticImage(1, latent_for())
        first = image.pixels
        assert image.pixels is first  # cached

    def test_drop_pixels(self):
        image = SyntheticImage(1, latent_for())
        _ = image.pixels
        image.drop_pixels()
        assert image._pixels is None


class TestTransforms:
    def test_registry_contains_all(self):
        names = transform_names()
        for name in ("mirror", "watermark", "shadow", "recompress",
                     "crop_border", "resize_small"):
            assert name in names

    def test_unknown_transform_raises(self):
        with pytest.raises(KeyError):
            apply_transform("nope", np.zeros((8, 8, 3)))

    def test_transforms_preserve_shape_and_range(self):
        pixels = render_latent(latent_for())
        for name in transform_names():
            out = apply_transform(name, pixels, seed=1)
            assert out.shape == pixels.shape
            assert out.min() >= 0.0 and out.max() <= 1.0 + 1e-9

    def test_mirror_involution(self):
        pixels = render_latent(latent_for())
        assert np.allclose(apply_transform("mirror", apply_transform("mirror", pixels)), pixels)

    def test_transforms_do_not_mutate_input(self):
        pixels = render_latent(latent_for())
        copy = pixels.copy()
        for name in transform_names():
            apply_transform(name, pixels, seed=2)
        assert np.array_equal(pixels, copy)

    def test_evasion_transforms_registered(self):
        for name in EVASION_TRANSFORMS:
            assert name in transform_names()


class TestPack:
    def make_pack(self, n=10):
        images = [SyntheticImage(i, latent_for(seed=i)) for i in range(n)]
        return Pack(pack_id=1, model_id=3, images=images)

    def test_requires_images(self):
        with pytest.raises(ValueError):
            Pack(pack_id=1, model_id=1, images=[])

    def test_len_and_iter(self):
        pack = self.make_pack(5)
        assert len(pack) == 5
        assert len(list(pack)) == 5

    def test_stage_mix_total(self):
        for n in (1, 3, 10, 89):
            assert len(pack_stage_mix(n)) == n

    def test_stage_mix_composition(self):
        kinds = pack_stage_mix(100)
        dressed = kinds.count(ImageKind.MODEL_DRESSED)
        sexual = kinds.count(ImageKind.MODEL_SEXUAL)
        assert dressed > sexual  # dressed images dominate (§4)

    def test_stage_mix_invalid(self):
        with pytest.raises(ValueError):
            pack_stage_mix(0)

    def test_stage_counts(self):
        pack = self.make_pack(4)
        counts = pack.stage_counts()
        assert sum(counts.values()) == 4
