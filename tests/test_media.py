"""Tests for the synthetic image substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media import (
    DEFAULT_SIZE,
    EVASION_TRANSFORMS,
    ImageKind,
    ImageLatent,
    Pack,
    SyntheticImage,
    apply_transform,
    pack_stage_mix,
    render_latent,
    sample_latent,
    skin_tone_for_model,
    transform_names,
)


def latent_for(kind=ImageKind.MODEL_NUDE, seed=42, **kwargs):
    defaults = dict(
        visual_seed=seed,
        kind=kind,
        skin_fraction=0.4 if kind.is_model else 0.0,
        word_count=0 if kind.is_model else 30,
        model_id=1 if kind.is_model else None,
    )
    defaults.update(kwargs)
    return ImageLatent(**defaults)


class TestLatent:
    def test_validation_skin_fraction(self):
        with pytest.raises(ValueError):
            latent_for(skin_fraction=1.5)

    def test_validation_word_count(self):
        with pytest.raises(ValueError):
            latent_for(word_count=-1)

    def test_validation_size(self):
        with pytest.raises(ValueError):
            latent_for(size=4)

    def test_with_transform_appends(self):
        lat = latent_for().with_transform("mirror").with_transform("watermark")
        assert lat.transform_chain == ("mirror", "watermark")

    def test_kind_flags(self):
        assert ImageKind.MODEL_SEXUAL.is_nude
        assert not ImageKind.MODEL_DRESSED.is_nude
        assert ImageKind.PROOF_SCREENSHOT.is_screenshot
        assert ImageKind.MODEL_DRESSED.is_model
        assert not ImageKind.LANDSCAPE.is_model

    def test_sample_latent_respects_kind(self, rng):
        lat = sample_latent(rng, ImageKind.PROOF_SCREENSHOT)
        assert lat.word_count >= 25
        assert lat.skin_fraction == 0.0


class TestRendering:
    def test_deterministic(self):
        a = render_latent(latent_for())
        b = render_latent(latent_for())
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = render_latent(latent_for(seed=1))
        b = render_latent(latent_for(seed=2))
        assert not np.array_equal(a, b)

    def test_shape_and_range(self):
        pixels = render_latent(latent_for())
        assert pixels.shape == (DEFAULT_SIZE, DEFAULT_SIZE, 3)
        assert pixels.min() >= 0.0 and pixels.max() <= 1.0

    def test_float32_output(self):
        assert render_latent(latent_for()).dtype == np.float32

    def test_transform_chain_applied(self):
        base = render_latent(latent_for())
        mirrored = render_latent(latent_for().with_transform("mirror"))
        assert np.allclose(mirrored, base[:, ::-1, :], atol=1e-6)

    def test_model_tone_consistency(self):
        tone_a = skin_tone_for_model(7)
        tone_b = skin_tone_for_model(7)
        assert np.array_equal(tone_a, tone_b)
        assert not np.array_equal(tone_a, skin_tone_for_model(8))

    @given(st.sampled_from(list(ImageKind)), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_any_kind_renders_in_range(self, kind, seed):
        rng = np.random.default_rng(seed)
        lat = sample_latent(rng, kind, model_id=1 if kind.is_model else None)
        pixels = render_latent(lat)
        assert pixels.min() >= 0.0 and pixels.max() <= 1.0


class TestVectorisedRenderBitIdentity:
    """The vectorised background/word painters must be bit-identical to the
    original per-row loops, *including* identical RNG stream consumption."""

    @staticmethod
    def _landscape_reference(size, rng):
        pixels = np.zeros((size, size, 3), dtype=np.float64)
        horizon = int(size * rng.uniform(0.35, 0.6))
        sky_top = np.array([0.45, 0.68, 0.92])
        sky_bottom = np.array([0.75, 0.85, 0.96])
        for row in range(horizon):
            mix = row / max(horizon - 1, 1)
            pixels[row, :, :] = sky_top * (1 - mix) + sky_bottom * mix
        sandy = rng.random() < 0.15
        ground = (
            np.array([0.80, 0.66, 0.48]) if sandy else np.array([0.30, 0.55, 0.25])
        )
        for row in range(horizon, size):
            shade = rng.uniform(0.9, 1.05)
            pixels[row, :, :] = np.clip(ground * shade, 0.0, 1.0)
        return pixels

    @staticmethod
    def _paint_words_reference(pixels, latent, rng):
        size = latent.size
        dark_theme = latent.kind is ImageKind.SOURCE_CODE
        ink = (
            np.array([0.85, 0.85, 0.80])
            if dark_theme
            else np.array([0.05, 0.05, 0.08])
        )
        if latent.kind is ImageKind.MEME:
            row_starts = [2, size - 8]
            panel_margin = 2
        else:
            header = max(3, size // 16) + 2
            row_starts = list(range(header, size - 4, 4))
            panel_margin = 3
        remaining = latent.word_count
        word_height = 2
        for row_start in row_starts:
            if remaining <= 0:
                break
            column = panel_margin + int(rng.integers(0, 3))
            while remaining > 0 and column < size - panel_margin - 3:
                width = int(rng.integers(3, 7))
                if column + width >= size - panel_margin:
                    break
                pixels[row_start : row_start + word_height, column : column + width, :] = ink
                column += width + 2 + int(rng.integers(0, 2))
                remaining -= 1

    @pytest.mark.parametrize("seed", range(12))
    def test_landscape_background_matches_row_loop(self, seed):
        from repro.media.render import _landscape_background

        for size in (24, DEFAULT_SIZE, 65):
            rng_new = np.random.default_rng(seed)
            rng_ref = np.random.default_rng(seed)
            new = _landscape_background(size, rng_new)
            ref = self._landscape_reference(size, rng_ref)
            assert np.array_equal(new, ref)
            # Identical stream consumption — downstream draws unaffected.
            assert (
                rng_new.bit_generator.state == rng_ref.bit_generator.state
            )

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize(
        "kind", [ImageKind.PROOF_SCREENSHOT, ImageKind.SOURCE_CODE, ImageKind.MEME]
    )
    def test_paint_words_matches_slice_loop(self, seed, kind):
        from repro.media.render import _paint_words

        latent = latent_for(kind=kind, seed=seed, word_count=25)
        base = np.random.default_rng(999).uniform(0.2, 0.8, (latent.size, latent.size, 3))
        new_pixels, ref_pixels = base.copy(), base.copy()
        rng_new = np.random.default_rng(seed)
        rng_ref = np.random.default_rng(seed)
        _paint_words(new_pixels, latent, rng_new)
        self._paint_words_reference(ref_pixels, latent, rng_ref)
        assert np.array_equal(new_pixels, ref_pixels)
        assert rng_new.bit_generator.state == rng_ref.bit_generator.state

    @staticmethod
    def _paint_skin_reference(pixels, latent, rng):
        """Original full-grid ellipse rasteriser (pre-bounding-box)."""
        from repro.media.render import skin_tone_for_model

        size = latent.size
        tone = skin_tone_for_model(latent.model_id)
        target = latent.skin_fraction
        total_pixels = size * size
        rows, cols = np.mgrid[0:size, 0:size]
        covered = np.zeros((size, size), dtype=bool)
        for _attempt in range(64):
            coverage = covered.sum() / total_pixels
            if coverage >= target:
                break
            remaining = target - coverage
            area = max(remaining * total_pixels * rng.uniform(0.5, 1.0), 9.0)
            aspect = rng.uniform(0.4, 2.5)
            semi_minor = max(np.sqrt(area / (np.pi * aspect)), 1.5)
            semi_major = semi_minor * aspect
            centre_r = rng.uniform(0.2, 0.8) * size
            centre_c = rng.uniform(0.2, 0.8) * size
            angle = rng.uniform(0.0, np.pi)
            dr = rows - centre_r
            dc = cols - centre_c
            rot_r = dr * np.cos(angle) + dc * np.sin(angle)
            rot_c = -dr * np.sin(angle) + dc * np.cos(angle)
            mask = (rot_r / semi_major) ** 2 + (rot_c / semi_minor) ** 2 <= 1.0
            covered |= mask
        shading = rng.uniform(0.92, 1.05, size=(size, size))[..., None]
        blob = np.clip(tone[None, None, :] * shading, 0.0, 1.0)
        pixels[covered] = blob[covered]

    @pytest.mark.parametrize("seed", range(20))
    def test_paint_skin_matches_full_grid(self, seed):
        """The bounding-box ellipse rasteriser equals the full-grid
        original bit-for-bit, including RNG stream consumption (the
        coverage early-break must fire on identical attempt counts)."""
        from repro.media.render import _paint_skin

        meta = np.random.default_rng(seed)
        kind = ImageKind.MODEL_SEXUAL if seed % 2 else ImageKind.MODEL_NUDE
        latent = sample_latent(meta, kind, model_id=int(meta.integers(1, 30)))
        base = meta.uniform(0.0, 1.0, (latent.size, latent.size, 3))
        new_pixels, ref_pixels = base.copy(), base.copy()
        rng_new = np.random.default_rng(seed)
        rng_ref = np.random.default_rng(seed)
        _paint_skin(new_pixels, latent, rng_new)
        self._paint_skin_reference(ref_pixels, latent, rng_ref)
        assert np.array_equal(new_pixels, ref_pixels)
        assert rng_new.bit_generator.state == rng_ref.bit_generator.state

    @given(st.sampled_from(list(ImageKind)), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_render_seed_sweep_stable(self, kind, seed):
        # Full-renderer determinism across the seed sweep: two renders of
        # the same latent remain bit-identical under the vectorised paths.
        rng = np.random.default_rng(seed)
        lat = sample_latent(rng, kind, model_id=1 if kind.is_model else None)
        assert np.array_equal(render_latent(lat), render_latent(lat))


class TestSyntheticImage:
    def test_lazy_and_cached(self):
        image = SyntheticImage(1, latent_for())
        first = image.pixels
        assert image.pixels is first  # cached

    def test_drop_pixels(self):
        image = SyntheticImage(1, latent_for())
        _ = image.pixels
        image.drop_pixels()
        assert image._pixels is None


class TestTransforms:
    def test_registry_contains_all(self):
        names = transform_names()
        for name in ("mirror", "watermark", "shadow", "recompress",
                     "crop_border", "resize_small"):
            assert name in names

    def test_unknown_transform_raises(self):
        with pytest.raises(KeyError):
            apply_transform("nope", np.zeros((8, 8, 3)))

    def test_transforms_preserve_shape_and_range(self):
        pixels = render_latent(latent_for())
        for name in transform_names():
            out = apply_transform(name, pixels, seed=1)
            assert out.shape == pixels.shape
            assert out.min() >= 0.0 and out.max() <= 1.0 + 1e-9

    def test_mirror_involution(self):
        pixels = render_latent(latent_for())
        assert np.allclose(apply_transform("mirror", apply_transform("mirror", pixels)), pixels)

    def test_transforms_do_not_mutate_input(self):
        pixels = render_latent(latent_for())
        copy = pixels.copy()
        for name in transform_names():
            apply_transform(name, pixels, seed=2)
        assert np.array_equal(pixels, copy)

    def test_evasion_transforms_registered(self):
        for name in EVASION_TRANSFORMS:
            assert name in transform_names()


class TestPack:
    def make_pack(self, n=10):
        images = [SyntheticImage(i, latent_for(seed=i)) for i in range(n)]
        return Pack(pack_id=1, model_id=3, images=images)

    def test_requires_images(self):
        with pytest.raises(ValueError):
            Pack(pack_id=1, model_id=1, images=[])

    def test_len_and_iter(self):
        pack = self.make_pack(5)
        assert len(pack) == 5
        assert len(list(pack)) == 5

    def test_stage_mix_total(self):
        for n in (1, 3, 10, 89):
            assert len(pack_stage_mix(n)) == n

    def test_stage_mix_composition(self):
        kinds = pack_stage_mix(100)
        dressed = kinds.count(ImageKind.MODEL_DRESSED)
        sexual = kinds.count(ImageKind.MODEL_SEXUAL)
        assert dressed > sexual  # dressed images dominate (§4)

    def test_stage_mix_invalid(self):
        with pytest.raises(ValueError):
            pack_stage_mix(0)

    def test_stage_counts(self):
        pack = self.make_pack(4)
        counts = pack.stage_counts()
        assert sum(counts.values()) == 4
