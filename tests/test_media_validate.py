"""Tests for the raster-validation boundary and its error taxonomy."""

import numpy as np
import pytest

from repro.media.validate import (
    MAX_RASTER_DIM,
    MIN_RASTER_DIM,
    AbsurdDimensionError,
    CorruptPayloadError,
    DecoyPayloadError,
    EmptyPayloadError,
    NonFinitePixelError,
    TruncatedRasterError,
    UnexpectedResourceError,
    WrongDtypeError,
    WrongShapeError,
    ensure_color_raster,
    validate_raster,
)


def good_raster(h=16, w=16):
    return np.random.default_rng(0).random((h, w, 3))


class TestTaxonomy:
    def test_every_error_is_a_value_error(self):
        """Pre-taxonomy boundaries caught ValueError; that must keep working."""
        for cls in (
            AbsurdDimensionError,
            DecoyPayloadError,
            EmptyPayloadError,
            NonFinitePixelError,
            TruncatedRasterError,
            UnexpectedResourceError,
            WrongDtypeError,
            WrongShapeError,
        ):
            assert issubclass(cls, CorruptPayloadError)
            assert issubclass(cls, ValueError)

    def test_catchable_as_valueerror(self):
        with pytest.raises(ValueError):
            validate_raster(np.full((16, 16, 3), np.inf))


class TestValidateRaster:
    def test_clean_raster_returned_unchanged(self):
        raster = good_raster()
        assert validate_raster(raster) is raster

    def test_decoy_bytes(self):
        with pytest.raises(DecoyPayloadError):
            validate_raster(b"<html>404</html>")

    def test_decoy_scalar_array(self):
        with pytest.raises(DecoyPayloadError):
            validate_raster(np.float64(3.0) * np.ones(()))

    def test_none_payload(self):
        with pytest.raises(DecoyPayloadError):
            validate_raster(None)

    def test_empty_payload(self):
        with pytest.raises(EmptyPayloadError):
            validate_raster(np.empty((0, 0, 3)))

    def test_wrong_dtype(self):
        with pytest.raises(WrongDtypeError):
            validate_raster((good_raster() * 255).astype(np.uint8))

    def test_grayscale_2d(self):
        with pytest.raises(WrongShapeError):
            validate_raster(good_raster().mean(axis=2))

    def test_rgba(self):
        raster = good_raster()
        rgba = np.concatenate([raster, np.ones(raster.shape[:2] + (1,))], axis=2)
        with pytest.raises(WrongShapeError):
            validate_raster(rgba)

    def test_truncated(self):
        with pytest.raises(TruncatedRasterError):
            validate_raster(good_raster()[: MIN_RASTER_DIM - 1])

    def test_min_dim_boundary_is_legal(self):
        assert validate_raster(good_raster(MIN_RASTER_DIM, MIN_RASTER_DIM)) is not None

    def test_absurd_dims(self):
        bomb = np.zeros((4, MAX_RASTER_DIM + 1, 3))
        with pytest.raises(AbsurdDimensionError):
            validate_raster(bomb)

    def test_nan_pixels(self):
        raster = good_raster()
        raster[3, 4, 1] = np.nan
        with pytest.raises(NonFinitePixelError):
            validate_raster(raster)

    def test_inf_pixels(self):
        raster = good_raster()
        raster[0, 0, 0] = -np.inf
        with pytest.raises(NonFinitePixelError):
            validate_raster(raster)

    def test_context_lands_in_message(self):
        with pytest.raises(EmptyPayloadError, match=r"https://imgur\.com/x"):
            validate_raster(np.empty((0, 0, 3)), context="https://imgur.com/x")

    def test_float32_accepted(self):
        assert validate_raster(good_raster().astype(np.float32)) is not None


class TestEnsureColorRaster:
    def test_tiny_patches_accepted(self):
        """Kernel contract: classifier tests legitimately feed 1×1 patches."""
        patch = np.zeros((1, 1, 3))
        assert ensure_color_raster(patch) is patch

    def test_uint8_accepted(self):
        """Kernel contract is structural: dtype is the caller's business."""
        assert ensure_color_raster(np.zeros((4, 4, 3), dtype=np.uint8)) is not None

    def test_rejects_2d(self):
        with pytest.raises(WrongShapeError, match="H×W×3"):
            ensure_color_raster(np.zeros((4, 4)))

    def test_rejects_decoy(self):
        with pytest.raises(DecoyPayloadError, match="H×W×3"):
            ensure_color_raster("not an array")

    def test_rejects_empty(self):
        with pytest.raises(EmptyPayloadError):
            ensure_color_raster(np.empty((0, 0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(NonFinitePixelError):
            ensure_color_raster(np.full((4, 4, 3), np.nan))


class TestKernelBoundaries:
    """The classifiers use the taxonomy at their own edges."""

    def test_nsfw_scorer_rejects_poison(self):
        from repro.vision.nsfw import NsfwScorer

        with pytest.raises(CorruptPayloadError):
            NsfwScorer().score(np.zeros((16, 16)))

    def test_ocr_rejects_poison(self):
        from repro.vision.ocr import OcrEngine

        with pytest.raises(CorruptPayloadError):
            OcrEngine().find_words(np.full((16, 16, 3), np.inf))

    def test_robust_hash_rejects_nonfinite(self):
        from repro.vision.photodna import robust_hash

        with pytest.raises(NonFinitePixelError):
            robust_hash(np.full((64, 64, 3), np.nan))

    def test_hash_batch_rejects_nonfinite(self):
        from repro.vision.batch import hash_batch

        clean = good_raster(64, 64)
        poison = np.full((64, 64, 3), np.inf)
        with pytest.raises(NonFinitePixelError):
            hash_batch([clean, poison])

    def test_hash_batch_rejects_decoy(self):
        from repro.vision.batch import hash_batch

        with pytest.raises(CorruptPayloadError):
            hash_batch([good_raster(), b"<html>404</html>"])

    def test_hash_batch_rejects_empty_member(self):
        from repro.vision.batch import hash_batch

        with pytest.raises(CorruptPayloadError):
            hash_batch([good_raster(), np.empty((0, 0, 3))])
