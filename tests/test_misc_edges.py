"""Edge-case tests across modules that the main suites exercise lightly."""

from datetime import datetime

import numpy as np
import pytest

from repro.core import HybridTopClassifier, NsfvClassifier
from repro.core.report_text import render_earnings
from repro.core.earnings import EarningsResult
from repro.forum import Actor, Board, Forum, ForumDataset, Post, Thread
from repro.media import ImageKind, SyntheticImage, sample_latent
from repro.text import Lexicon
from repro.web import OriginSite, SimulatedInternet, Url

T0 = datetime(2015, 1, 1)


class TestUrlDomain:
    def test_registrable_property(self):
        assert Url("www.example.co", "/x").domain == "example.co"
        assert Url("a.b.c.example.com").domain == "example.com"


class TestLexiconEdges:
    def test_overlapping_phrase_counts(self):
        lex = Lexicon("x", ("aa bb",))
        assert lex.count_matches("aa bb aa bb") == 2

    def test_substring_lexicon_counts(self):
        lex = Lexicon("x", ("whor",), match_substrings=True)
        assert lex.count_matches("ewhoring whoring") == 2

    def test_empty_text(self):
        lex = Lexicon("x", ("pack",))
        assert not lex.matches("")
        assert lex.count_matches("") == 0


class TestInternetEdges:
    def test_origin_urls_listing(self, rng):
        net = SimulatedInternet(seed=9)
        site = OriginSite("origin.example", "Blogs", "blog", "Europe")
        image = SyntheticImage(1, sample_latent(rng, ImageKind.LANDSCAPE))
        url_a = net.host_on_origin(site, image, T0)
        url_b = net.host_on_origin(site, image, T0)
        assert set(map(str, net.origin_urls("origin.example"))) == {str(url_a), str(url_b)}
        assert net.origin_urls("unknown.example") == []

    def test_origin_sites_iteration(self, rng):
        net = SimulatedInternet(seed=9)
        net.register_origin_site(OriginSite("a.example", "Blogs", "blog", "UK"))
        net.register_origin_site(OriginSite("b.example", "News", "blog", "UK"))
        assert {s.domain for s in net.origin_sites()} == {"a.example", "b.example"}

    def test_reregistering_same_site_ok(self):
        net = SimulatedInternet()
        site = OriginSite("a.example", "Blogs", "blog", "UK")
        net.register_origin_site(site)
        net.register_origin_site(site)  # idempotent
        assert net.origin_site("a.example") == site


class TestClassifierEdges:
    def build(self):
        ds = ForumDataset()
        ds.add_forum(Forum(1, "F"))
        ds.add_board(Board(2, 1, "B"))
        ds.add_actor(Actor(3, 1, "a", T0))
        threads = []
        for i, (heading, label) in enumerate(
            [("selling fresh pack pics", True), ("question about stuff?", False)] * 6
        ):
            thread = Thread(100 + i, 2, 1, 3, heading, T0)
            ds.add_thread(thread)
            ds.add_post(Post(1000 + i, 100 + i, 3, T0, "body text here", 0))
            threads.append((thread, label))
        return ds, threads

    def test_extract_tops_empty_corpus(self):
        ds, threads = self.build()
        classifier = HybridTopClassifier()
        classifier.fit(ds, [t for t, _ in threads], [l for _, l in threads])
        tops, stats = classifier.extract_tops(ds, [])
        assert tops == []
        assert stats.n_hybrid == 0

    def test_evaluate_on_training_data(self):
        ds, threads = self.build()
        classifier = HybridTopClassifier()
        classifier.fit(ds, [t for t, _ in threads], [l for _, l in threads])
        evaluation = classifier.evaluate(
            ds, [t for t, _ in threads], [l for _, l in threads]
        )
        assert evaluation.f1 == 1.0  # trivially separable training set


class TestPipelineCustomisation:
    def test_custom_nsfv_thresholds_flow_through(self, world):
        """A stricter NSFV classifier changes the stage-4 split."""
        from repro import pipeline_for_world

        truth = world.forums
        strict = NsfvClassifier(sfv_threshold=0.001, low_band_threshold=0.001,
                                nsfv_threshold=0.001)
        pipeline = pipeline_for_world(world)
        pipeline.nsfv = strict
        report = pipeline.run(
            top_oracle=lambda tid: truth.thread_types.get(tid) == "top",
            proof_oracle=truth.proof_truth.get,
            annotate_n=300,
        )
        # With everything above 0.001 NSFV, nearly every preview is NSFV.
        assert report.n_nsfv_previews >= 0.9 * len(report.preview_verdicts)


class TestRenderEdges:
    def test_render_earnings_empty(self):
        empty = EarningsResult(
            n_threads_matched=0, n_posts_with_links=0, n_unique_urls=0,
            n_downloaded=0, n_abuse_matched=0, n_indecent_filtered=0,
            n_analyzable=0, records=[], n_non_proofs=0,
        )
        text = render_earnings(empty)
        assert "0 actors" in text
