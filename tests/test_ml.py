"""Tests for the learning substrate: SVM, metrics, splits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    ConfusionMatrix,
    LinearSVM,
    SVMNotFitted,
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
    train_test_split,
)


def linearly_separable(n=200, d=10, seed=0, imbalance=0.5):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    w = rng.normal(0, 1, d)
    threshold = np.quantile(X @ w, 1.0 - imbalance)
    y = (X @ w > threshold).astype(int)
    return X, y


class TestLinearSVM:
    def test_learns_separable_problem(self):
        X, y = linearly_separable(seed=1)
        svm = LinearSVM(lam=1e-4, epochs=30, seed=0).fit(X, y)
        assert accuracy(y, svm.predict(X)) > 0.9

    def test_handles_imbalance(self):
        X, y = linearly_separable(n=600, seed=2, imbalance=0.1)
        svm = LinearSVM(lam=1e-4, epochs=30, seed=0).fit(X, y)
        cm = confusion_matrix(y, svm.predict(X))
        assert cm.recall > 0.8
        assert cm.precision > 0.6

    def test_deterministic_given_seed(self):
        X, y = linearly_separable(seed=3)
        a = LinearSVM(seed=5).fit(X, y)
        b = LinearSVM(seed=5).fit(X, y)
        assert np.allclose(a.weights, b.weights)
        assert a.bias == b.bias

    def test_accepts_plus_minus_labels(self):
        X, y = linearly_separable(seed=4)
        signs = np.where(y > 0, 1, -1)
        svm = LinearSVM(epochs=15).fit(X, signs)
        assert accuracy(y, svm.predict(X)) > 0.85

    def test_rejects_single_class(self):
        X = np.ones((10, 3))
        with pytest.raises(ValueError):
            LinearSVM().fit(X, np.zeros(10))

    def test_rejects_nonbinary_labels(self):
        X = np.ones((3, 2))
        with pytest.raises(ValueError):
            LinearSVM().fit(X, np.array([0, 1, 2]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((0, 3)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(SVMNotFitted):
            LinearSVM().predict(np.ones((1, 2)))

    def test_dimension_mismatch_raises(self):
        X, y = linearly_separable(d=4, seed=6)
        svm = LinearSVM(epochs=5).fit(X, y)
        with pytest.raises(ValueError):
            svm.predict(np.ones((2, 7)))

    def test_decision_function_1d_input(self):
        X, y = linearly_separable(d=4, seed=7)
        svm = LinearSVM(epochs=5).fit(X, y)
        scores = svm.decision_function(X[0])
        assert scores.shape == (1,)

    def test_hinge_loss_decreases_with_training(self):
        X, y = linearly_separable(seed=8)
        short = LinearSVM(epochs=1, seed=0).fit(X, y)
        long = LinearSVM(epochs=40, seed=0).fit(X, y)
        assert long.hinge_loss(X, y) <= short.hinge_loss(X, y) + 0.05


class TestMetrics:
    def test_perfect_prediction(self):
        y = [0, 1, 1, 0]
        assert precision(y, y) == 1.0
        assert recall(y, y) == 1.0
        assert f1_score(y, y) == 1.0
        assert accuracy(y, y) == 1.0

    def test_all_wrong(self):
        y = [0, 1]
        p = [1, 0]
        assert precision(y, p) == 0.0
        assert recall(y, p) == 0.0
        assert f1_score(y, p) == 0.0

    def test_known_confusion(self):
        y_true = [1, 1, 1, 0, 0, 0]
        y_pred = [1, 1, 0, 1, 0, 0]
        cm = confusion_matrix(y_true, y_pred)
        assert (cm.true_positive, cm.false_positive,
                cm.true_negative, cm.false_negative) == (2, 1, 2, 1)
        assert cm.precision == pytest.approx(2 / 3)
        assert cm.recall == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        cm = confusion_matrix([1, 0], [0, 0])
        assert cm.precision == 0.0  # defined as 0, not NaN

    def test_false_positive_rate(self):
        cm = confusion_matrix([0, 0, 1], [1, 0, 1])
        assert cm.false_positive_rate == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([1, 0], [1])

    @given(st.lists(st.booleans(), min_size=1, max_size=50),
           st.lists(st.booleans(), min_size=1, max_size=50))
    def test_f1_between_precision_and_recall_bounds(self, a, b):
        n = min(len(a), len(b))
        cm = confusion_matrix(a[:n], b[:n])
        assert 0.0 <= cm.f1 <= 1.0
        assert min(cm.precision, cm.recall) - 1e-12 <= cm.f1 <= max(cm.precision, cm.recall) + 1e-12


class TestSplit:
    def test_partition_covers_everything(self):
        split = train_test_split(100, seed=1)
        combined = sorted(list(split.train_indices) + list(split.test_indices))
        assert combined == list(range(100))

    def test_fraction_respected(self):
        split = train_test_split(100, train_fraction=0.8, seed=2)
        assert split.n_train == 80
        assert split.n_test == 20

    def test_stratified_keeps_both_classes(self):
        labels = [1] * 10 + [0] * 90
        split = train_test_split(100, seed=3, stratify_labels=labels)
        train_labels = [labels[i] for i in split.train_indices]
        test_labels = [labels[i] for i in split.test_indices]
        assert any(train_labels) and not all(train_labels)
        assert any(test_labels) and not all(test_labels)

    def test_deterministic(self):
        a = train_test_split(50, seed=9)
        b = train_test_split(50, seed=9)
        assert np.array_equal(a.train_indices, b.train_indices)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(10, train_fraction=1.0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            train_test_split(1)

    @given(st.integers(min_value=2, max_value=500),
           st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=30)
    def test_partition_property(self, n, fraction):
        split = train_test_split(n, train_fraction=fraction, seed=0)
        assert split.n_train + split.n_test == n
        assert split.n_train >= 1 and split.n_test >= 1
