"""Direct unit tests for supply-side internals (copy plans, hashes)."""

from datetime import datetime

import numpy as np
import pytest

from repro.synth import generate_supply_side
from repro.synth.models_gen import (
    _sample_copy_count,
    fill_copy_hashes,
)
from repro.vision import hamming_distance


class TestCopyCounts:
    def test_positive_and_capped(self, rng):
        counts = [_sample_copy_count(rng, popularity=1.0) for _ in range(3000)]
        assert min(counts) >= 1
        assert max(counts) <= 2500

    def test_mean_calibrated_to_table5(self, rng):
        counts = [_sample_copy_count(rng, popularity=1.0) for _ in range(8000)]
        # Table 5: mean matches per matched image ≈ 12.7–17.3.
        assert 8.0 < np.mean(counts) < 30.0

    def test_heavy_tail(self, rng):
        counts = [_sample_copy_count(rng, popularity=1.0) for _ in range(8000)]
        assert max(counts) > 10 * np.median(counts)

    def test_popularity_scales(self, rng):
        low = np.mean([_sample_copy_count(rng, 0.5) for _ in range(3000)])
        high = np.mean([_sample_copy_count(rng, 3.0) for _ in range(3000)])
        assert high > 2 * low


class TestFillCopyHashes:
    def test_hashes_close_to_base(self, rng):
        supply = generate_supply_side(rng, n_models=2, n_origin_sites=60)
        circulating = supply.models[0].pool[0]
        base = 0x0123456789ABCDEF
        fill_copy_hashes(rng, circulating, base)
        assert circulating.copies  # plans were attached at generation
        for copy in circulating.copies:
            assert 0 <= hamming_distance(copy.copy_hash, base) <= 3

    def test_plan_metadata_preserved(self, rng):
        supply = generate_supply_side(rng, n_models=2, n_origin_sites=60)
        circulating = supply.models[0].pool[0]
        before = [(c.domain, c.published_at, c.url_path) for c in circulating.copies]
        fill_copy_hashes(rng, circulating, 42)
        after = [(c.domain, c.published_at, c.url_path) for c in circulating.copies]
        assert before == after


class TestSupplyStructure:
    def test_copy_dates_follow_first_publication(self, rng):
        supply = generate_supply_side(rng, n_models=3, n_origin_sites=60)
        for model in supply.models:
            for circulating in model.pool[:10]:
                for copy in circulating.copies:
                    assert copy.published_at >= circulating.first_published

    def test_copy_domains_are_registered_sites(self, rng):
        supply = generate_supply_side(rng, n_models=2, n_origin_sites=60)
        domains = {site.domain for site in supply.origin_sites}
        for model in supply.models:
            for circulating in model.pool[:10]:
                for copy in circulating.copies:
                    assert copy.domain in domains

    def test_origin_domains_unique(self, rng):
        supply = generate_supply_side(rng, n_models=2, n_origin_sites=200)
        domains = [site.domain for site in supply.origin_sites]
        assert len(domains) == len(set(domains))

    def test_underage_models_minority_by_default(self, rng):
        supply = generate_supply_side(rng, n_models=60, n_origin_sites=60)
        underage = sum(1 for m in supply.models if m.is_underage)
        assert underage <= 6  # 1.2% expected of 60
