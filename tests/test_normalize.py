"""Tests for the §4.1 forum-text normalisation extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.text import (
    collapse_stretches,
    deleet,
    normalize_forum_text,
    strip_markup,
)
from repro.synth.templates import corrupt_heading


class TestDeleet:
    @pytest.mark.parametrize("raw,expected", [
        ("p4ck", "pack"),
        ("uns4tur4ted", "unsaturated"),
        ("s3lling", "selling"),
        ("pic5", "pics"),
        ("fr33", "free"),
        ("gu1de", "guide"),
    ])
    def test_common_leet(self, raw, expected):
        assert deleet(raw) == expected

    def test_pure_numbers_untouched(self):
        assert deleet("50 pics for $20") == "50 pics for $20"

    def test_plain_text_untouched(self):
        text = "Selling fresh pack, previews inside"
        assert deleet(text) == text

    def test_punctuation_preserved(self):
        assert deleet("(p4ck!)") == "(pack!)"

    def test_mixed_sentence(self):
        assert deleet("new p4ck, 50 pics") == "new pack, 50 pics"


class TestCollapse:
    def test_stretches_collapsed(self):
        assert collapse_stretches("freeeee") == "free"
        assert collapse_stretches("sooooo good") == "soo good"

    def test_legit_doubles_survive(self):
        assert collapse_stretches("account telling") == "account telling"


class TestStripMarkup:
    def test_paired_tags_removed(self):
        assert strip_markup("[b]pack[/b]") == "pack"
        assert strip_markup("[url=http://x]link[/url]") == "link"

    def test_marker_brackets_survive(self):
        # Table 2 matches '[TUT]' and '[question]' literally.
        assert "[TUT]" in strip_markup("[TUT] my guide")
        assert "[question]" in strip_markup("[question] help")


class TestNormalize:
    def test_full_pipeline(self):
        raw = "[b]uns4tur4ted[/b]   p4ck   freeee"
        assert normalize_forum_text(raw) == "unsaturated pack free"

    def test_idempotent(self):
        raw = "uns4tur4ted p4ck freeee [b]x[/b]"
        once = normalize_forum_text(raw)
        assert normalize_forum_text(once) == once

    @given(st.text(max_size=150))
    @settings(max_examples=80)
    def test_total_function(self, text):
        out = normalize_forum_text(text)
        assert isinstance(out, str)

    def test_roundtrip_with_corruption(self, rng):
        """The normaliser undoes the generator's corruption for keyword
        purposes: the pack keywords become findable again."""
        from repro.core import STRONG_PACK_KEYWORDS

        recovered = 0
        total = 0
        for _ in range(50):
            heading = "Unsaturated pack of Amber (50 pictures)"
            corrupted = corrupt_heading(rng, heading)
            if STRONG_PACK_KEYWORDS.matches(corrupted):
                continue  # corruption left the keywords intact
            total += 1
            if STRONG_PACK_KEYWORDS.matches(normalize_forum_text(corrupted)):
                recovered += 1
        if total:
            assert recovered / total > 0.8


class TestCorruptHeading:
    def test_deterministic_given_rng_state(self):
        a = corrupt_heading(np.random.default_rng(5), "pack of pics")
        b = corrupt_heading(np.random.default_rng(5), "pack of pics")
        assert a == b

    def test_changes_text_usually(self, rng):
        changed = sum(
            1 for _ in range(30)
            if corrupt_heading(rng, "selling unsaturated pack") != "selling unsaturated pack"
        )
        assert changed > 20

    def test_length_close(self, rng):
        heading = "selling unsaturated pack"
        out = corrupt_heading(rng, heading)
        assert len(heading) <= len(out) <= len(heading) + 2


class TestClassifierIntegration:
    def test_normalized_heuristic_recovers_leet(self):
        from datetime import datetime

        from repro.core import HeuristicTopClassifier
        from repro.forum import Thread

        thread = Thread(1, 1, 1, 1, "uns4tur4ted p4ck of Amber", datetime(2015, 1, 1))
        assert not HeuristicTopClassifier().is_top(thread)
        assert HeuristicTopClassifier(normalize=True).is_top(thread)

    def test_with_normalization_constructor(self):
        from repro.core import HybridTopClassifier

        classifier = HybridTopClassifier.with_normalization()
        assert classifier.heuristics.normalize
        assert classifier.extractor.normalize
