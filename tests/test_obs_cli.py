"""CLI-level tests for the telemetry surface: --trace-out / repro trace."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs.export import manifest_path_for, read_trace

#: Tiny world so each CLI invocation stays fast.
CLI_WORLD = ["--seed", "3", "--scale", "0.006"]


class TestTraceOut:
    def test_run_writes_trace_and_manifest(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        code = main(
            ["run", *CLI_WORLD, "--annotate", "200", "--trace-out", str(trace)]
        )
        assert code == 0
        assert trace.exists()
        manifest_path = manifest_path_for(trace)
        assert manifest_path.exists()

        # every line is a JSON object; first is the meta header
        lines = trace.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[0]["seed"] == 3
        assert all(r["type"] == "span" for r in records[1:])
        assert len(records) > 5  # root + stages + fetches at least

        manifest = json.loads(manifest_path.read_text())
        assert manifest["kind"] == "repro.run_manifest"
        assert manifest["seed"] == 3
        # the manifest funnel equals the trace meta funnel
        assert manifest["funnel"] == records[0]["funnel"]
        funnel = {row["stage"]: row["count"] for row in manifest["funnel"]}
        assert funnel["threads_selected"] > 0
        assert funnel["unique_files"] > 0

    def test_trace_meta_is_self_describing(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(["run", *CLI_WORLD, "--annotate", "200", "--trace-out", str(trace)])
        meta, spans = read_trace(trace)
        assert meta["funnel"], "meta must embed the funnel"
        assert meta["stages"], "meta must embed the stage table"
        assert {s["name"] for s in spans} >= {"pipeline.run", "stage.url_crawl"}

    def test_trace_subcommand_renders(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(["run", *CLI_WORLD, "--annotate", "200", "--trace-out", str(trace)])
        capsys.readouterr()  # drop the run output
        code = main(["trace", str(trace)])
        assert code == 0
        output = capsys.readouterr().out
        assert "-- flame summary --" in output
        assert "pipeline.run" in output
        assert "stage.url_crawl" in output
        assert "-- funnel --" in output
        assert "seed=3" in output

    def test_run_without_trace_out_writes_nothing(self, tmp_path, capsys):
        code = main(["run", *CLI_WORLD, "--annotate", "200"])
        assert code == 0
        assert list(tmp_path.iterdir()) == []
        output = capsys.readouterr().out
        assert "-- telemetry --" in output  # summary still rendered


class TestLoggingFlags:
    def test_log_json_emits_json_lines(self, capsys):
        code = main(
            ["--log-json", "run", *CLI_WORLD, "--annotate", "200"]
        )
        assert code == 0
        err_lines = [l for l in capsys.readouterr().err.splitlines() if l.strip()]
        assert err_lines
        for line in err_lines:
            payload = json.loads(line)
            assert payload["logger"].startswith("repro")
            assert "msg" in payload

    def test_log_level_error_silences_progress(self, capsys):
        code = main(
            ["--log-level", "error", "run", *CLI_WORLD, "--annotate", "200"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "building world" not in captured.err
        assert "== selection" in captured.out  # stdout output unaffected
