"""Unit tests for trace/manifest export (repro.obs.export) and logging."""

from __future__ import annotations

import io
import json
import logging

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import RunTelemetry, Tracer, get_logger, setup_logging
from repro.obs.export import (
    MANIFEST_KEYS,
    MANIFEST_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    build_manifest,
    deterministic_manifest_view,
    iter_trace,
    manifest_path_for,
    read_trace,
    render_funnel,
    render_trace,
    write_manifest,
    write_trace,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("pipeline.run", seed=7):
        with tracer.span("stage.crawl"):
            tracer.event("retry.attempt", domain="a.example", attempt=1)
        with tracer.span("stage.nsfv", n=10):
            pass
    return tracer


class TestTraceFile:
    def test_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "t.jsonl"
        write_trace(path, tracer.spans(), meta={"seed": 7, "funnel": []})
        meta, spans = read_trace(path)
        assert meta["kind"] == "repro.trace"
        assert meta["schema_version"] == TRACE_SCHEMA_VERSION
        assert meta["seed"] == 7
        assert [s["name"] for s in spans] == [
            "pipeline.run",
            "stage.crawl",
            "stage.nsfv",
        ]
        # events survive the round trip, inlined on their span
        crawl = next(s for s in spans if s["name"] == "stage.crawl")
        assert crawl["events"][0]["name"] == "retry.attempt"

    def test_one_json_object_per_line(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", _sample_tracer().spans())
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4  # meta + 3 spans
        for line in lines:
            json.loads(line)

    def test_meta_type_cannot_be_overwritten(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", [], meta={"type": "span"})
        meta, spans = read_trace(path)
        assert meta["type"] == "meta"
        assert spans == []

    def test_unknown_record_type_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\n{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown trace record type"):
            read_trace(path)

    def test_missing_meta_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="missing trace meta"):
            read_trace(path)

    def test_manifest_path_convention(self):
        assert manifest_path_for("out/run.jsonl").name == "run.manifest.json"


class _FakeReport:
    """Just enough PipelineReport surface for build_manifest."""

    def __init__(self, telemetry):
        self.telemetry = telemetry
        self.degraded = False
        self.stage_outcomes = []
        self.quarantine = None
        self.vision_cache_stats = None
        self.crawl = None


class TestManifest:
    def _manifest(self):
        tele = RunTelemetry(tracer=_sample_tracer())
        tele.funnel_row("threads_selected", 100)
        tele.funnel_row("tops_extracted", 10)
        tele.metrics.counter("crawl.retries").inc(3)
        tele.metrics.histogram("pipeline.stage_seconds", stage="x").observe(0.5)
        return build_manifest(_FakeReport(tele), seed=7, config={"scale": 0.01})

    def test_schema_stability(self):
        manifest = self._manifest()
        assert tuple(manifest.keys()) == MANIFEST_KEYS
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["kind"] == "repro.run_manifest"

    def test_json_serialisable(self, tmp_path):
        manifest = self._manifest()
        path = write_manifest(tmp_path / "m.json", manifest)
        loaded = json.loads(path.read_text())
        assert loaded["seed"] == 7
        assert loaded["config"] == {"scale": 0.01}
        assert set(loaded.keys()) == set(MANIFEST_KEYS)

    def test_funnel_and_metrics_embedded(self):
        manifest = self._manifest()
        assert manifest["funnel"][0] == {"stage": "threads_selected", "count": 100}
        names = [m["name"] for m in manifest["metrics"]]
        assert "crawl.retries" in names
        assert manifest["n_spans"] == 3
        assert manifest["n_events"] == 1
        assert len(manifest["slowest_spans"]) == 3

    def test_versions_present(self):
        versions = self._manifest()["versions"]
        assert set(versions) >= {"python", "numpy", "scipy", "repro"}

    def test_executor_block_recorded(self):
        tele = RunTelemetry(tracer=_sample_tracer())
        shape = {"executor": "process", "workers": 4, "cpu_count": 8}
        manifest = build_manifest(
            _FakeReport(tele), seed=7, config={}, executor=shape
        )
        assert manifest["executor"] == shape
        assert tuple(manifest.keys()) == MANIFEST_KEYS
        # Serial runs still carry the key, holding None.
        assert self._manifest()["executor"] is None

    def test_deterministic_view_strips_timing(self):
        manifest = self._manifest()
        view = deterministic_manifest_view(manifest)
        for absent in ("created_unix", "versions", "slowest_spans",
                       "n_spans", "n_events", "executor"):
            assert absent not in view
        names = [m["name"] for m in view["metrics"]]
        assert "pipeline.stage_seconds" not in names
        assert "crawl.retries" in names
        for stage in view["stages"]:
            assert "elapsed_seconds" not in stage


class TestRenderers:
    def test_render_funnel_table(self):
        funnel = [
            {"stage": "threads", "count": 100},
            {"stage": "tops", "count": 10},
            {"stage": "lost", "count": None},
        ]
        text = render_funnel(funnel)
        assert "threads" in text and "100" in text
        assert "10.0% of previous" in text
        assert "-" in text  # None renders as a dash
        assert render_funnel([]) == "no funnel recorded"

    def test_render_trace_aggregates_spans(self, tmp_path):
        tracer = Tracer()
        with tracer.span("pipeline.run"):
            with tracer.span("stage.crawl"):
                for _ in range(3):
                    with tracer.span("crawl.fetch"):
                        pass
        path = write_trace(
            tmp_path / "t.jsonl",
            tracer.spans(),
            meta={"seed": 7, "funnel": [{"stage": "s", "count": 1}]},
        )
        meta, spans = read_trace(path)
        text = render_trace(meta, spans)
        assert "crawl.fetch ×3" in text
        assert "pipeline.run" in text
        assert "-- funnel --" in text
        assert "seed=7" in text

    def test_render_trace_counts_errors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("x")
        text = render_trace({}, [s.as_dict() for s in tracer.spans()])
        assert "1 errors" in text
        assert "errors=1" in text


class TestLogging:
    def test_human_format(self):
        stream = io.StringIO()
        setup_logging(level="info", json_mode=False, stream=stream)
        get_logger("cli").info("hello %s", "world")
        line = stream.getvalue().strip()
        assert line.endswith("repro.cli: hello world")
        assert "info" in line

    def test_json_format_includes_extra(self):
        stream = io.StringIO()
        setup_logging(level="debug", json_mode=True, stream=stream)
        get_logger("cli").info("building world", extra={"seed": 7, "scale": 0.02})
        payload = json.loads(stream.getvalue())
        assert payload["msg"] == "building world"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.cli"
        assert payload["seed"] == 7
        assert payload["scale"] == 0.02

    def test_level_filtering(self):
        stream = io.StringIO()
        setup_logging(level="warning", json_mode=False, stream=stream)
        get_logger().info("quiet")
        get_logger().warning("loud")
        output = stream.getvalue()
        assert "quiet" not in output
        assert "loud" in output

    def test_bad_level_raises(self):
        with pytest.raises(ValueError):
            setup_logging(level="chatty")

    def test_idempotent_reconfiguration(self):
        first = io.StringIO()
        second = io.StringIO()
        setup_logging(stream=first)
        setup_logging(stream=second)
        logger = get_logger()
        assert len(logger.handlers) == 1
        logger.warning("only once")
        assert first.getvalue() == ""
        assert "only once" in second.getvalue()

    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("cli").name == "repro.cli"
        assert get_logger("repro.web").name == "repro.web"

    def teardown_method(self):
        # restore a sane default so later tests logging to stderr work
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            logger.removeHandler(handler)


class TestIterTrace:
    """Streaming reader: equivalence with read_trace, tolerant modes."""

    def test_streams_meta_then_spans(self, tmp_path):
        path = write_trace(
            tmp_path / "t.jsonl", _sample_tracer().spans(), meta={"seed": 7}
        )
        records = list(iter_trace(path))
        assert records[0]["type"] == "meta"
        assert [r["type"] for r in records[1:]] == ["span"] * 3

    def test_is_a_lazy_iterator(self, tmp_path):
        path = write_trace(tmp_path / "t.jsonl", _sample_tracer().spans())
        it = iter_trace(path)
        assert iter(it) is it
        assert next(it)["type"] == "meta"

    def test_strict_rejects_unknown_type(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "meta"}\n{"type": "flux"}\n')
        with pytest.raises(ValueError, match="unknown trace record type"):
            list(iter_trace(path))

    def test_tolerant_skips_unknown_type_and_non_objects(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"type": "meta"}\n'
            '{"type": "flux"}\n'
            "[1, 2]\n"
            '{"type": "span", "name": "a"}\n'
        )
        records = list(iter_trace(path, strict=False))
        assert [r["type"] for r in records] == ["meta", "span"]

    def test_malformed_json_raises_even_tolerant(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "meta"}\n{torn')
        with pytest.raises(ValueError, match="not JSON"):
            list(iter_trace(path, strict=False))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "meta"}\n\n\n{"type": "span"}\n')
        assert len(list(iter_trace(path))) == 2

    def test_tolerant_read_trace_missing_meta(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_trace(path, strict=False) == ({}, [])

    @given(
        spans=st.lists(
            st.fixed_dictionaries(
                {
                    "type": st.just("span"),
                    "id": st.integers(min_value=1, max_value=10_000),
                    "parent": st.none() | st.integers(1, 10_000),
                    "name": st.text(
                        alphabet=st.characters(
                            blacklist_categories=("Cs",),
                            blacklist_characters="\n\r",
                        ),
                        max_size=20,
                    ),
                    "duration": st.floats(0, 100, allow_nan=False),
                }
            ),
            max_size=20,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_streamed_equals_eager(self, spans, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "t.jsonl"
        write_trace(path, spans, meta={"seed": 1})
        meta, eager = read_trace(path)
        streamed = list(iter_trace(path))
        assert streamed[0] == meta
        assert streamed[1:] == eager
        assert [s["name"] for s in eager] == [s["name"] for s in spans]


class TestRendererHardening:
    """repro trace must render weird traces, never crash on them."""

    def test_render_empty_trace(self):
        text = render_trace({}, [])
        assert "0 spans" in text

    def test_render_unknown_span_names(self):
        spans = [
            {"type": "span", "id": 1, "parent": None,
             "name": "profile.sample", "duration": 0.0},
            {"type": "span", "id": 2, "parent": None,
             "name": "future.unknown", "duration": 0.1},
        ]
        text = render_trace({}, spans)
        assert "profile.sample" in text
        assert "future.unknown" in text

    def test_render_missing_ids_and_names(self):
        spans = [
            {"type": "span", "duration": 0.1},
            {"type": "span", "id": 5, "name": "x", "duration": 0.2},
        ]
        text = render_trace({}, spans)
        assert "2 spans" in text

    def test_render_dangling_parent(self):
        spans = [
            {"type": "span", "id": 2, "parent": 999, "name": "orphan",
             "duration": 0.1},
        ]
        assert "orphan" in render_trace({}, spans)

    def test_render_parent_cycle_terminates(self):
        spans = [
            {"type": "span", "id": 1, "parent": 2, "name": "a",
             "duration": 0.1},
            {"type": "span", "id": 2, "parent": 1, "name": "b",
             "duration": 0.1},
        ]
        text = render_trace({}, spans)
        assert "a" in text and "b" in text

    def test_render_funnel_non_numeric_counts(self):
        funnel = [
            {"stage": "ok", "count": 10},
            {"count": 5},
            {"stage": "weird", "count": "NaNish"},
            {"stage": "boolish", "count": True},
        ]
        text = render_funnel(funnel)
        assert "ok" in text and "?" in text and "weird" in text
