"""Persisted run history + regression gate tests (DESIGN.md §14).

Covers ``repro.obs.history`` (summaries, store round-trip, the
run_incremental linkage), ``repro.obs.regress`` (SLO validation,
violations, diffs) and the ``repro obs`` CLI exit-code contract.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import ProfilingTracer, RunTelemetry, Tracer
from repro.obs.export import write_trace
from repro.obs.history import (
    HistorySummary,
    record_history,
    summarize_run,
    summarize_trace,
)
from repro.obs.regress import (
    DEFAULT_SLO,
    EXIT_REGRESSION,
    check_regressions,
    diff_histories,
    load_slo,
)
from repro.store import RunStore, run_incremental

WORLD = dict(seed=3, scale=0.006)
CLI_WORLD = ["--seed", "3", "--scale", "0.006"]


def _telemetry(profiled: bool = False) -> RunTelemetry:
    tracer = ProfilingTracer(sample_interval=0.0) if profiled else Tracer()
    tele = RunTelemetry(tracer=tracer)
    with tracer.span("pipeline.run"):
        with tracer.span("stage.crawl"):
            tracer.event("retry.attempt", domain="a.example")
    tele.funnel_row("threads_selected", 10)
    tele.funnel_row("images_downloaded", 40)
    tele.funnel_row("quarantined_records", 2)
    tele.metrics.gauge("nsfv.rate").set(0.25)
    return tele


def _summary(wall=1.0, rss=1000, funnel_n=40, **kwargs) -> HistorySummary:
    return HistorySummary(
        source="run",
        wall_seconds=wall,
        peak_rss_kb=rss,
        funnel=[
            {"stage": "threads_selected", "count": 10},
            {"stage": "images_downloaded", "count": funnel_n},
        ],
        **kwargs,
    )


class TestSummarizeRun:
    def test_unprofiled_summary(self):
        summary = summarize_run(_telemetry(), seed=3, epoch=1, wall_seconds=2.0)
        assert summary.source == "run"
        assert not summary.profiled
        assert summary.cpu_seconds is None
        assert summary.n_spans == 2
        assert summary.n_events == 1
        assert summary.n_records == 40
        assert summary.n_quarantined == 2
        assert summary.funnel_count("threads_selected") == 10
        assert {r["name"] for r in summary.spans} == {
            "pipeline.run",
            "stage.crawl",
        }
        assert any(m["name"] == "nsfv.rate" for m in summary.metrics)

    def test_profiled_summary_has_cpu(self):
        summary = summarize_run(_telemetry(profiled=True))
        assert summary.profiled
        assert summary.cpu_seconds is not None and summary.cpu_seconds >= 0
        assert summary.peak_rss_kb > 0

    def test_null_tracer_still_summarises_funnel(self):
        tele = RunTelemetry()
        tele.funnel_row("images_downloaded", 7)
        summary = summarize_run(tele)
        assert summary.n_spans == 0
        assert summary.n_records == 7


class TestSummarizeTrace:
    def test_matches_summarize_run(self, tmp_path):
        tele = _telemetry(profiled=True)
        tele.tracer.stop()
        path = write_trace(
            tmp_path / "t.jsonl",
            tele.tracer.spans(),
            meta={
                "seed": 3,
                "funnel": tele.funnel(),
                "metrics": tele.deterministic_snapshot()["metrics"],
            },
        )
        from_run = summarize_run(tele, seed=3)
        from_trace = summarize_trace(path)
        assert from_trace.source == "trace"
        assert from_trace.seed == 3
        assert from_trace.profiled
        assert from_trace.n_spans == from_run.n_spans
        assert from_trace.funnel == from_run.funnel
        assert from_trace.metrics == from_run.metrics
        run_names = {r["name"]: r["count"] for r in from_run.spans}
        trace_names = {r["name"]: r["count"] for r in from_trace.spans}
        assert trace_names == run_names

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        summary = summarize_trace(path)
        assert summary.n_spans == 0
        assert summary.wall_seconds is None
        assert not summary.profiled


class TestStoreRoundTrip:
    def test_save_and_query(self, tmp_path):
        store = RunStore(tmp_path / "s.sqlite")
        tele = _telemetry(profiled=True)
        tele.tracer.stop()
        summary = summarize_run(tele, seed=3, epoch=1, wall_seconds=1.5)
        history_id = record_history(store, summary)
        (run,) = store.history_runs()
        assert run["history_id"] == history_id
        assert run["seed"] == 3
        assert run["epoch"] == 1
        assert run["wall_seconds"] == pytest.approx(1.5)
        assert run["profiled"]
        assert run["n_records"] == 40
        assert {r["stage"] for r in run["funnel"]} == {
            "threads_selected",
            "images_downloaded",
            "quarantined_records",
        }
        spans = store.history_spans(history_id)
        assert {r["name"] for r in spans} == {"pipeline.run", "stage.crawl"}
        metrics = store.history_metrics(history_id)
        by_name = {m["name"]: m for m in metrics}
        assert by_name["nsfv.rate"]["value"] == pytest.approx(0.25)
        store.close()

    def test_incremental_run_records_history(self, tmp_path):
        result = run_incremental(
            tmp_path / "s.sqlite", epoch=1, annotate_n=200, **WORLD
        )
        assert result.history_id is not None
        with RunStore(tmp_path / "s.sqlite") as store:
            (run,) = store.history_runs()
            assert run["history_id"] == result.history_id
            assert run["run_id"] == result.run_id
            assert run["epoch"] == 1
            assert run["n_records"] == len(result.report.crawl.all_images)
            # Default telemetry runs untraced: history still carries the
            # funnel and metrics, just no span aggregates.
            assert store.history_spans(result.history_id) == []

    def test_incremental_traced_run_records_spans(self, tmp_path):
        result = run_incremental(
            tmp_path / "s.sqlite", epoch=1, annotate_n=200,
            telemetry=RunTelemetry(tracer=Tracer()), **WORLD
        )
        with RunStore(tmp_path / "s.sqlite") as store:
            names = {
                r["name"] for r in store.history_spans(result.history_id)
            }
            # store.epoch is still open when history is summarised
            # (history rides inside it), so it is absent by design.
            assert "pipeline.run" in names
            assert "store.read" in names

    def test_ingest_bench_idempotent(self, tmp_path):
        with RunStore(tmp_path / "s.sqlite") as store:
            assert store.ingest_bench("BENCH_x", {"overhead": 0.01}, 100.0)
            assert not store.ingest_bench("BENCH_x", {"overhead": 0.99}, 100.0)
            assert store.ingest_bench("BENCH_x", {"overhead": 0.02}, 200.0)
            rows = store.bench_results("BENCH_x")
            assert [r["recorded_unix"] for r in rows] == [100.0, 200.0]
            assert rows[0]["payload"]["overhead"] == 0.01


class TestLoadSlo:
    def test_defaults_pass_validation(self):
        assert load_slo(DEFAULT_SLO) == DEFAULT_SLO

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            load_slo({"wall_ratio_typo": 2.0})

    def test_non_positive_ratio_rejected(self):
        with pytest.raises(ValueError, match="must be > 0"):
            load_slo({"wall_seconds_max_ratio": 0})

    def test_floors_coerced_to_float(self):
        spec = load_slo({"funnel_floors": {"images_downloaded": 5}})
        assert spec["funnel_floors"]["images_downloaded"] == 5.0

    def test_doc_keys_tolerated(self):
        assert load_slo({"description": "hi"}) == {}

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"funnel_min_ratio": 0.8}))
        assert load_slo(path) == {"funnel_min_ratio": 0.8}


class _FakeStore:
    """Duck-typed store: just the two methods check_regressions uses."""

    def __init__(self, runs, metrics=None):
        self._runs = runs
        self._metrics = metrics or {}

    def history_runs(self):
        return self._runs

    def history_metrics(self, history_id):
        return self._metrics.get(history_id, [])


def _run_row(history_id, wall=1.0, rss=1000, images=40, **extra):
    row = {
        "history_id": history_id,
        "label": f"run {history_id}",
        "source": "run",
        "wall_seconds": wall,
        "cpu_seconds": None,
        "peak_rss_kb": rss,
        "funnel": [{"stage": "images_downloaded", "count": images}],
    }
    row.update(extra)
    return row


class TestCheckRegressions:
    def test_clean_pair_passes(self):
        store = _FakeStore([_run_row(1), _run_row(2, wall=1.1)])
        report = check_regressions(store)
        assert report.ok
        assert report.checks

    def test_wall_time_regression_detected(self):
        store = _FakeStore([_run_row(1, wall=1.0), _run_row(2, wall=4.0)])
        report = check_regressions(store)
        assert not report.ok
        assert [v.check for v in report.violations] == ["wall_time"]
        joined = "\n".join(report.summary_lines())
        assert "REGRESSION [wall_time]" in joined
        assert "!!  wall_time" in joined
        assert "ok  wall_time" not in joined

    def test_funnel_recall_regression_detected(self):
        store = _FakeStore([_run_row(1, images=100), _run_row(2, images=50)])
        report = check_regressions(store)
        assert [v.check for v in report.violations] == (
            ["funnel[images_downloaded]"]
        )

    def test_missing_funnel_stage_is_a_violation(self):
        latest = _run_row(2)
        latest["funnel"] = []
        store = _FakeStore([_run_row(1), latest])
        report = check_regressions(store)
        assert not report.ok

    def test_metric_floor(self):
        store = _FakeStore(
            [_run_row(1), _run_row(2)],
            metrics={
                2: [{"name": "nsfv.rate", "kind": "gauge", "labels": {},
                     "value": 0.1}]
            },
        )
        report = check_regressions(store, {"metric_floors": {"nsfv.rate": 0.2}})
        assert [v.check for v in report.violations] == (
            ["metric_floor[nsfv.rate]"]
        )

    def test_explicit_baseline_latest(self):
        store = _FakeStore([_run_row(1, wall=4.0), _run_row(2, wall=1.0)])
        report = check_regressions(store, baseline_id=2, latest_id=1)
        assert not report.ok

    def test_empty_history_raises(self):
        with pytest.raises(ValueError, match="no run history"):
            check_regressions(_FakeStore([]))

    def test_single_row_raises(self):
        with pytest.raises(ValueError, match="single history row"):
            check_regressions(_FakeStore([_run_row(1)]))

    def test_unknown_id_raises(self):
        store = _FakeStore([_run_row(1), _run_row(2)])
        with pytest.raises(ValueError, match="not found"):
            check_regressions(store, baseline_id=99)


class TestDiffHistories:
    def test_flags_large_changes(self):
        store = _FakeStore(
            [_run_row(1, wall=1.0, images=40), _run_row(2, wall=2.0, images=41)]
        )
        rows = diff_histories(store, 1, 2)
        by_name = {r["name"]: r for r in rows}
        assert by_name["wall_seconds"]["flagged"]
        assert by_name["wall_seconds"]["ratio"] == pytest.approx(2.0)
        assert not by_name["images_downloaded"]["flagged"]
        # flagged rows sort first
        assert rows[0]["flagged"]

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="not found"):
            diff_histories(_FakeStore([_run_row(1)]), 1, 2)


class TestObsCli:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "store.sqlite"
        for epoch in ("1", "2"):
            code = main(
                ["run", *CLI_WORLD, "--annotate", "200",
                 "--store", str(path), "--epoch", epoch,
                 "--epoch-total", "2", "--profile"]
            )
            assert code == 0
        return path

    def test_runs_lists_both(self, store_path, capsys):
        assert main(["obs", "runs", "--store", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "epoch 1/2" in out and "epoch 2/2" in out

    def test_top(self, store_path, capsys):
        assert main(["obs", "top", "--store", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.run" in out and "store.read" in out

    def test_diff(self, store_path, capsys):
        assert main(
            ["obs", "diff", "1", "2", "--store", str(store_path)]
        ) == 0
        assert "history #1 -> #2" in capsys.readouterr().out

    def test_regressions_clean(self, store_path, capsys):
        code = main(
            ["obs", "regressions", "--store", str(store_path),
             "--slo", "slo.json"]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regressions_injected_failure_exits_5(
        self, store_path, tmp_path, capsys
    ):
        slo = tmp_path / "slo.json"
        slo.write_text(json.dumps({"funnel_floors": {"images_downloaded": 1e9}}))
        code = main(
            ["obs", "regressions", "--store", str(store_path),
             "--slo", str(slo)]
        )
        assert code == EXIT_REGRESSION == 5
        assert "REGRESSION" in capsys.readouterr().out

    def test_regressions_bad_slo_exits_2(self, store_path, tmp_path):
        slo = tmp_path / "bad.json"
        slo.write_text(json.dumps({"nope": 1}))
        assert main(
            ["obs", "regressions", "--store", str(store_path),
             "--slo", str(slo)]
        ) == 2

    def test_top_without_store_or_trace_exits_2(self):
        assert main(["obs", "top"]) == 2

    def test_ingest_trace_then_top_trace(self, store_path, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(
            ["run", *CLI_WORLD, "--annotate", "200",
             "--trace-out", str(trace), "--profile"]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "top", "--trace", str(trace)]) == 0
        assert "profiled" in capsys.readouterr().out
        assert main(
            ["obs", "ingest-trace", str(trace), "--store", str(store_path),
             "--label", "from-trace"]
        ) == 0
        assert main(["obs", "runs", "--store", str(store_path)]) == 0
        assert "from-trace" in capsys.readouterr().out

    def test_ingest_bench(self, store_path, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_demo.json").write_text(json.dumps({"ok": True}))
        (results / "TRAJECTORY.jsonl").write_text(
            json.dumps(
                {"name": "BENCH_demo", "recorded_unix": 5.0, "payload": {}}
            )
            + "\n"
        )
        assert main(
            ["obs", "ingest-bench", "--store", str(store_path), str(results)]
        ) == 0
        assert "ingested 2" in capsys.readouterr().out
        # idempotent
        assert main(
            ["obs", "ingest-bench", "--store", str(store_path), str(results)]
        ) == 0
        assert "ingested 0" in capsys.readouterr().out

    def test_profiled_store_run_measurement_matches_plain(self, tmp_path):
        plain = run_incremental(
            tmp_path / "a.sqlite", epoch=1, annotate_n=200, **WORLD
        )
        profiler = ProfilingTracer(allocations=True, sample_interval=0.0)
        profiler.start()
        try:
            profiled = run_incremental(
                tmp_path / "b.sqlite", epoch=1, annotate_n=200,
                telemetry=RunTelemetry(tracer=profiler), **WORLD
            )
        finally:
            profiler.stop()
        assert plain.measurement == profiled.measurement
        assert plain.crawl_digest == profiled.crawl_digest
