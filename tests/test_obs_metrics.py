"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    is_timing_metric,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.as_dict() == {"value": 5}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge()
        g.set(10)
        g.inc(-3)
        assert g.value == 7


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 2.0, 4.9, 100.0):
            h.observe(v)
        # inclusive upper bounds; last slot is the +Inf overflow
        assert h.bucket_counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.vmin == 0.5
        assert h.vmax == 100.0
        assert h.mean == pytest.approx(sum((0.5, 1.0, 1.5, 2.0, 4.9, 100.0)) / 6)

    def test_as_dict_shape(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.2)
        d = h.as_dict()
        assert d["buckets"] == [1.0]
        assert d["bucket_counts"] == [1, 0]
        assert d["count"] == 1
        assert d["sum"] == pytest.approx(0.2)

    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.vmin is None and h.vmax is None
        assert len(h.bucket_counts) == len(DEFAULT_SECONDS_BUCKETS) + 1

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        a = reg.counter("crawl.retries", domain="x")
        b = reg.counter("crawl.retries", domain="x")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.counter("runs", stage="crawl").inc(2)
        reg.counter("runs", stage="nsfv").inc(3)
        snap = {tuple(m["labels"].items()): m["value"] for m in reg.snapshot()}
        assert snap == {(("stage", "crawl"),): 2, (("stage", "nsfv"),): 3}

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("m", x="1", y="2")
        b = reg.counter("m", y="2", x="1")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("thing", other="label")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_snapshot_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.gauge("b.gauge").set(1)
        reg.counter("a.counter").inc()
        reg.histogram("c.hist_seconds").observe(0.01)
        snap = reg.snapshot()
        assert [m["name"] for m in snap] == ["a.counter", "b.gauge", "c.hist_seconds"]
        json.dumps(snap)  # must be JSON-serialisable as-is
        assert len(reg) == 3

    def test_deterministic_snapshot_excludes_timing(self):
        reg = MetricsRegistry()
        reg.counter("crawl.retries").inc()
        reg.histogram("pipeline.stage_seconds", stage="x").observe(0.5)
        names = [m["name"] for m in reg.deterministic_snapshot()]
        assert names == ["crawl.retries"]

    def test_as_dict_alias(self):
        reg = MetricsRegistry()
        reg.counter("one").inc()
        assert reg.as_dict() == {"metrics": reg.snapshot()}


class TestTimingConvention:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("pipeline.stage_seconds", True),
            ("crawl.fetch.seconds", True),
            ("crawl.retries", False),
            ("funnel.unique_files", False),
            ("seconds_of_fame", False),
        ],
    )
    def test_is_timing_metric(self, name, expected):
        assert is_timing_metric(name) is expected
