"""Integration tests: telemetry threaded through a full pipeline run.

Covers the DESIGN.md §9 contracts:

* the Figure-1 funnel recorded on ``report.telemetry`` matches the
  counts the report itself carries;
* mirrored metrics equal the source statistics objects;
* with tracing enabled, the span hierarchy reflects the pipeline
  (``pipeline.run`` root → ``stage.*`` children → crawl/vision leaves)
  and retry/quarantine activity surfaces as span events;
* **determinism**: two runs of one seed produce identical
  ``deterministic_snapshot()`` / ``deterministic_manifest_view()``
  results — with tracing on, off, or mixed.
"""

from __future__ import annotations

import pytest

from repro import build_world, run_pipeline
from repro.obs import RunTelemetry, Tracer
from repro.obs.export import build_manifest, deterministic_manifest_view

SMALL_SEED = 3
SMALL_SCALE = 0.006
SMALL_ANNOTATE = 200


def _small_world(**overrides):
    kwargs = dict(seed=SMALL_SEED, scale=SMALL_SCALE)
    kwargs.update(overrides)
    return build_world(**kwargs)


def _run(world, tracer=None):
    telemetry = RunTelemetry(tracer=tracer)
    report = run_pipeline(world, annotate_n=SMALL_ANNOTATE, telemetry=telemetry)
    return report, telemetry


@pytest.fixture(scope="module")
def traced_run():
    """One traced small-world run shared by the inspection tests."""
    return _run(_small_world(), tracer=Tracer())


class TestFunnelMatchesReport:
    def test_funnel_counts_equal_report_counts(self, report):
        funnel = {row["stage"]: row["count"] for row in report.telemetry.funnel()}
        assert funnel["threads_selected"] == len(report.selection)
        assert funnel["images_downloaded"] == len(report.crawl.all_images)
        assert funnel["unique_files"] == report.crawl.n_unique_files
        assert funnel["nsfv_previews"] == report.n_nsfv_previews
        assert funnel["quarantined_records"] == report.n_quarantined

    def test_funnel_order_is_pipeline_order(self, report):
        stages = [row["stage"] for row in report.telemetry.funnel()]
        assert stages == [
            "threads_selected",
            "tops_extracted",
            "links_extracted",
            "images_downloaded",
            "unique_files",
            "nsfv_previews",
            "provenance_matches",
            "quarantined_records",
        ]

    def test_funnel_rows_mirrored_as_gauges(self, report):
        tele = report.telemetry
        snap = {
            m["name"]: m["value"]
            for m in tele.metrics.snapshot()
            if m["name"].startswith("funnel.")
        }
        for row in tele.funnel():
            if row["count"] is not None:
                assert snap[f"funnel.{row['stage']}"] == row["count"]


def _gauge_values(telemetry):
    return {
        m["name"]: m["value"]
        for m in telemetry.metrics.snapshot()
        if "value" in m
    }


class TestMetricMirrors:
    def test_vision_cache_metrics_equal_stats(self, report):
        snap = _gauge_values(report.telemetry)
        stats = report.vision_cache_stats
        assert snap["vision_cache.hits"] == stats.hits
        assert snap["vision_cache.misses"] == stats.misses
        assert snap["vision_cache.evictions"] == stats.evictions
        assert snap["vision_cache.entries"] == stats.n_entries

    def test_crawl_metrics_equal_stats(self, report):
        snap = _gauge_values(report.telemetry)
        stats = report.crawl.stats
        assert snap["crawl.links"] == stats.n_links
        assert snap["crawl.retries"] == stats.n_retries
        assert snap["crawl.giveups"] == stats.n_giveups
        assert snap["crawl.breaker_skips"] == stats.n_breaker_skips

    def test_stage_timing_histograms_recorded(self, report):
        timing = [
            m
            for m in report.telemetry.metrics.snapshot()
            if m["name"] == "pipeline.stage_seconds"
        ]
        # one histogram per completed stage, each with one observation
        assert len(timing) == len(report.stage_outcomes)
        assert all(m["count"] == 1 for m in timing)

    def test_stage_run_counters(self, report):
        ok = [
            m
            for m in report.telemetry.metrics.snapshot()
            if m["name"] == "pipeline.stage_runs" and m["labels"]["status"] == "ok"
        ]
        assert len(ok) == len(
            [o for o in report.stage_outcomes if o.status == "ok"]
        )


class TestSpanHierarchy:
    def test_root_span_is_pipeline_run(self, traced_run):
        _, telemetry = traced_run
        spans = telemetry.tracer.spans()
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["pipeline.run"]
        assert roots[0].attributes["seed"] == SMALL_SEED

    def test_stage_spans_parent_under_root(self, traced_run):
        _, telemetry = traced_run
        spans = telemetry.tracer.spans()
        root = next(s for s in spans if s.parent_id is None)
        stage_spans = [s for s in spans if s.name.startswith("stage.")]
        assert stage_spans, "expected one span per pipeline stage"
        assert all(s.parent_id == root.span_id for s in stage_spans)

    def test_fetch_spans_parent_under_crawl_stage(self, traced_run):
        _, telemetry = traced_run
        spans = telemetry.tracer.spans()
        crawl_stage = next(s for s in spans if s.name == "stage.url_crawl")
        fetches = [s for s in spans if s.name == "crawl.fetch"]
        assert fetches, "expected one span per crawled link"
        assert all(s.parent_id == crawl_stage.span_id for s in fetches)
        for span in fetches:
            assert "domain" in span.attributes
            assert span.attributes["attempts"] >= 1

    def test_fetch_span_count_matches_crawl_stats(self, traced_run):
        report, telemetry = traced_run
        fetches = [s for s in telemetry.tracer.spans() if s.name == "crawl.fetch"]
        assert len(fetches) == report.crawl.stats.n_links

    def test_vision_kernel_spans_present(self, traced_run):
        _, telemetry = traced_run
        names = {s.name for s in telemetry.tracer.spans()}
        assert "vision.hash_batch" in names
        assert "vision.nsfv_batch" in names

    def test_untraced_run_records_no_spans(self, report):
        # the session report ran with the default (null) recorder
        assert report.telemetry.tracing_enabled is False
        assert report.telemetry.tracer.spans() == []


class TestFaultEvents:
    @pytest.fixture(scope="class")
    def flaky_run(self):
        world = _small_world(fault_profile="flaky")
        return _run(world, tracer=Tracer())

    def test_retry_events_recorded(self, flaky_run):
        report, telemetry = flaky_run
        stats = report.crawl.stats
        assert stats.n_transient_faults > 0, "flaky profile should inject faults"
        events = [
            e for s in telemetry.tracer.spans() for e in s.events
        ]
        names = {e.name for e in events}
        assert "retry.attempt" in names
        n_attempts = sum(1 for e in events if e.name == "retry.attempt")
        assert n_attempts == stats.n_transient_faults

    def test_backoff_events_match_retries(self, flaky_run):
        report, telemetry = flaky_run
        events = [e for s in telemetry.tracer.spans() for e in s.events]
        n_backoffs = sum(1 for e in events if e.name == "retry.backoff")
        assert n_backoffs == report.crawl.stats.n_retries


class TestDeterminism:
    """Two runs of one seed agree on everything non-timing."""

    def test_same_seed_same_deterministic_snapshot(self):
        report_a, tele_a = _run(_small_world(), tracer=Tracer())
        report_b, tele_b = _run(_small_world(), tracer=None)
        assert tele_a.deterministic_snapshot() == tele_b.deterministic_snapshot()

    def test_same_seed_same_manifest_view(self):
        config = {"scale": SMALL_SCALE, "annotate": SMALL_ANNOTATE}
        report_a, _ = _run(_small_world(), tracer=Tracer())
        report_b, _ = _run(_small_world(), tracer=Tracer())
        view_a = deterministic_manifest_view(
            build_manifest(report_a, seed=SMALL_SEED, config=config)
        )
        view_b = deterministic_manifest_view(
            build_manifest(report_b, seed=SMALL_SEED, config=config)
        )
        assert view_a == view_b

    def test_tracing_does_not_change_the_measurement(self):
        report_a, _ = _run(_small_world(), tracer=Tracer())
        report_b, _ = _run(_small_world(), tracer=None)
        assert len(report_a.selection) == len(report_b.selection)
        assert report_a.crawl.digest() == report_b.crawl.digest()
        assert report_a.n_nsfv_previews == report_b.n_nsfv_previews
        assert report_a.earnings.total_usd == report_b.earnings.total_usd

    def test_span_structure_is_seed_deterministic(self):
        _, tele_a = _run(_small_world(), tracer=Tracer())
        _, tele_b = _run(_small_world(), tracer=Tracer())

        def shape(tele):
            return [
                (s.name, s.parent_id, sorted(s.attributes), [e.name for e in s.events])
                for s in sorted(tele.tracer.spans(), key=lambda s: s.span_id)
            ]

        assert shape(tele_a) == shape(tele_b)
