"""Sampling profiler tests (repro.obs.profile, DESIGN.md §14).

Covers the two contracts that make ``--profile`` safe to ship:

* **observer purity** — a profiled run's crawl digest, quarantine
  ledger and ``measurement_view()`` are bit-identical to an unprofiled
  run of the same seed, across worker counts and fault/payload
  profiles, because every ``profile.*`` attribute is a runtime metric
  excluded from the deterministic views;
* **aggregation correctness** — :func:`aggregate_spans` computes
  self-time (duration minus direct children), cpu/rss/alloc roll-ups
  and error counts from plain span dicts, streamed or in-memory.
"""

from __future__ import annotations

import time

import pytest

from repro import build_world, run_pipeline
from repro.obs import (
    ProfilingTracer,
    RunTelemetry,
    Tracer,
    aggregate_spans,
    is_runtime_metric,
)
from repro.obs.profile import (
    ALLOC_SPAN_PREFIXES,
    PROFILE_ATTR_PREFIX,
    rss_current_kb,
    rss_peak_kb,
)

SMALL_SEED = 3
SMALL_SCALE = 0.006
SMALL_ANNOTATE = 200


def _small_world(**overrides):
    kwargs = dict(seed=SMALL_SEED, scale=SMALL_SCALE)
    kwargs.update(overrides)
    return build_world(**kwargs)


def _run(world, tracer=None, workers=None):
    telemetry = RunTelemetry(tracer=tracer)
    try:
        report = run_pipeline(
            world,
            annotate_n=SMALL_ANNOTATE,
            telemetry=telemetry,
            workers=workers,
        )
    finally:
        if tracer is not None and getattr(tracer, "profiled", False):
            tracer.stop()
    return report, telemetry


def _profiler(**kwargs):
    kwargs.setdefault("sample_interval", 0.0)  # no sampler thread: exact spans
    tracer = ProfilingTracer(**kwargs)
    tracer.start()
    return tracer


class TestRssHelpers:
    def test_peak_positive_on_linux(self):
        assert rss_peak_kb() > 0

    def test_current_positive_and_at_most_peak(self):
        current = rss_current_kb()
        assert current > 0
        # VmHWM is the high-water mark of VmRSS.
        assert current <= rss_peak_kb() * 1.01 + 1024


class TestProfilingTracer:
    def test_is_a_tracer_and_marked_profiled(self):
        tracer = ProfilingTracer()
        assert isinstance(tracer, Tracer)
        assert tracer.profiled
        assert not Tracer.__dict__.get("profiled", False)

    def test_spans_carry_profile_attrs(self):
        tracer = _profiler()
        with tracer.span("stage.demo"):
            sum(range(20_000))
        tracer.stop()
        (span,) = tracer.spans()
        attrs = span.attributes
        assert attrs["profile.cpu_seconds"] >= 0.0
        assert attrs["profile.rss_peak_kb"] > 0
        assert "profile.rss_growth_kb" in attrs
        for key in attrs:
            if key.startswith(PROFILE_ATTR_PREFIX):
                assert is_runtime_metric(key)

    def test_alloc_attr_only_on_alloc_prefixes(self):
        tracer = _profiler(allocations=True)
        with tracer.span("pipeline.demo"):
            _ = [bytearray(1024) for _ in range(200)]
        with tracer.span("crawl.fetch"):
            _ = [bytearray(1024) for _ in range(200)]
        tracer.stop()
        by_name = {s.name: s.attributes for s in tracer.spans()}
        assert "profile.alloc_kb" in by_name["pipeline.demo"]
        assert "profile.alloc_kb" not in by_name["crawl.fetch"]
        assert any("pipeline.demo".startswith(p) for p in ALLOC_SPAN_PREFIXES)

    def test_alloc_off_by_default(self):
        tracer = _profiler()
        with tracer.span("pipeline.demo"):
            pass
        tracer.stop()
        (span,) = tracer.spans()
        assert "profile.alloc_kb" not in span.attributes

    def test_sampler_emits_samples_and_sample_spans(self):
        tracer = ProfilingTracer(sample_interval=0.005)
        tracer.start()
        try:
            with tracer.span("stage.sleepy"):
                time.sleep(0.08)
        finally:
            tracer.stop()
        samples = tracer.samples()
        assert len(samples) >= 2
        assert all(s["rss_kb"] > 0 for s in samples)
        sample_spans = [s for s in tracer.spans() if s.name == "profile.sample"]
        assert len(sample_spans) == len(samples)

    def test_stop_is_idempotent(self):
        tracer = _profiler()
        tracer.stop()
        tracer.stop()

    def test_nested_spans_get_independent_profiles(self):
        tracer = _profiler()
        with tracer.span("stage.outer"):
            with tracer.span("stage.inner"):
                sum(range(10_000))
        tracer.stop()
        by_name = {s.name: s.attributes for s in tracer.spans()}
        assert by_name["stage.outer"]["profile.cpu_seconds"] >= (
            by_name["stage.inner"]["profile.cpu_seconds"]
        )


class TestAggregateSpans:
    def _records(self):
        return [
            {"id": 1, "parent": None, "name": "root", "duration": 1.0,
             "status": "ok", "attrs": {"profile.cpu_seconds": 0.9,
                                       "profile.rss_peak_kb": 100}},
            {"id": 2, "parent": 1, "name": "leaf", "duration": 0.3,
             "status": "ok", "attrs": {"profile.cpu_seconds": 0.2,
                                       "profile.rss_peak_kb": 120}},
            {"id": 3, "parent": 1, "name": "leaf", "duration": 0.4,
             "status": "error", "attrs": {}},
        ]

    def test_self_time_subtracts_direct_children(self):
        rows = {r["name"]: r for r in aggregate_spans(self._records())}
        assert rows["root"]["self_seconds"] == pytest.approx(0.3)
        assert rows["root"]["total_seconds"] == pytest.approx(1.0)
        assert rows["leaf"]["total_seconds"] == pytest.approx(0.7)
        assert rows["leaf"]["count"] == 2

    def test_rollups(self):
        rows = {r["name"]: r for r in aggregate_spans(self._records())}
        assert rows["leaf"]["errors"] == 1
        assert rows["leaf"]["rss_peak_kb"] == 120
        assert rows["leaf"]["cpu_seconds"] == pytest.approx(0.2)
        assert rows["leaf"]["max_seconds"] == pytest.approx(0.4)
        assert rows["root"]["rss_peak_kb"] == 100

    def test_no_profile_attrs_yields_none_rollups(self):
        rows = aggregate_spans(
            [{"id": 1, "parent": None, "name": "a", "duration": 0.1,
              "status": "ok", "attrs": {}}]
        )
        assert rows[0]["cpu_seconds"] is None
        assert rows[0]["rss_peak_kb"] is None
        assert rows[0]["alloc_kb"] is None

    def test_self_time_clamped_non_negative(self):
        rows = aggregate_spans(
            [
                {"id": 1, "parent": None, "name": "p", "duration": 0.1,
                 "status": "ok", "attrs": {}},
                {"id": 2, "parent": 1, "name": "c", "duration": 0.5,
                 "status": "ok", "attrs": {}},
            ]
        )
        assert {r["name"]: r for r in rows}["p"]["self_seconds"] == 0.0

    def test_empty(self):
        assert aggregate_spans([]) == []


class TestObserverPurity:
    """Profiling must not perturb the measurement — property-tested."""

    @pytest.mark.parametrize("workers", [None, 4])
    @pytest.mark.parametrize(
        "fault_profile,payload_profile",
        [(None, None), ("flaky", "dirty")],
    )
    def test_profiled_run_bit_identical(
        self, workers, fault_profile, payload_profile
    ):
        overrides = {}
        if fault_profile:
            overrides["fault_profile"] = fault_profile
        if payload_profile:
            overrides["payload_profile"] = payload_profile
        report_off, tele_off = _run(
            _small_world(**overrides), tracer=None, workers=workers
        )
        report_prof, tele_prof = _run(
            _small_world(**overrides),
            tracer=_profiler(allocations=True),
            workers=workers,
        )
        assert report_off.crawl.digest() == report_prof.crawl.digest()
        assert tele_off.measurement_view() == tele_prof.measurement_view()
        assert [r.to_dict() for r in report_off.quarantine.records] == (
            [r.to_dict() for r in report_prof.quarantine.records]
        )

    def test_mixed_with_plain_tracer(self):
        _, tele_traced = _run(_small_world(), tracer=Tracer())
        _, tele_prof = _run(_small_world(), tracer=_profiler())
        assert tele_traced.measurement_view() == tele_prof.measurement_view()
        assert (
            tele_traced.deterministic_snapshot()
            == tele_prof.deterministic_snapshot()
        )

    def test_profile_attrs_are_runtime_metrics(self):
        for name in (
            "profile.cpu_seconds",
            "profile.rss_peak_kb",
            "profile.alloc_kb",
            "profile.sample_rss_kb",
        ):
            assert is_runtime_metric(name)

    def test_measurement_view_contains_no_profile_keys(self):
        _, tele = _run(_small_world(), tracer=_profiler())
        names = [m["name"] for m in tele.measurement_view()["metrics"]]
        assert not [n for n in names if n.startswith("profile.")]
