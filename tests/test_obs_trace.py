"""Unit tests for the span tracer (repro.obs.trace)."""

from __future__ import annotations

import threading

import pytest

from repro.obs.trace import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer


class TestSpanBasics:
    def test_span_records_name_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", n=3) as span:
            span.set(extra="yes")
            span.inc("count")
            span.inc("count", 2)
        (finished,) = tracer.spans()
        assert finished.name == "work"
        assert finished.attributes == {"n": 3, "extra": "yes", "count": 3}
        assert finished.status == "ok"

    def test_timing_is_monotonic_and_closed(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sorted(tracer.spans(), key=lambda s: s.name)
        for span in (inner, outer):
            assert span.t_end is not None
            assert span.t_end >= span.t_start >= 0.0
            assert span.duration >= 0.0
        # the child lives inside the parent's window
        assert outer.t_start <= inner.t_start
        assert inner.t_end <= outer.t_end

    def test_open_span_duration_is_zero(self):
        span = Span(name="open", span_id=1, parent_id=None, t_start=5.0)
        assert span.duration == 0.0

    def test_as_dict_shape(self):
        tracer = Tracer()
        with tracer.span("s", k="v") as span:
            tracer.event("e", a=1)
        record = tracer.spans()[0].as_dict()
        assert record["type"] == "span"
        assert record["name"] == "s"
        assert record["attrs"] == {"k": "v"}
        assert record["events"] == [
            {"name": "e", "t": record["events"][0]["t"], "attrs": {"a": 1}}
        ]
        assert span is not None  # managed value is the span itself


class TestNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id

    def test_span_ids_are_sequential_in_open_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            with tracer.span("c"):
                pass
        ids = {s.name: s.span_id for s in tracer.spans()}
        assert ids == {"a": 1, "b": 2, "c": 3}

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["first"].parent_id == root.span_id
        assert by_name["second"].parent_id == root.span_id

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_threads_have_independent_ancestry(self):
        tracer = Tracer()
        seen = {}

        def work():
            with tracer.span("thread_root") as span:
                seen["parent"] = span.parent_id

        with tracer.span("main_root"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        # the worker's span must NOT parent under main's open span
        assert seen["parent"] is None


class TestErrorsAndEvents:
    def test_exception_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.status == "error"
        assert span.attributes["error"] == "RuntimeError"
        assert span.t_end is not None  # still closed

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.event("retry.attempt", domain="x.example", attempt=1)
        (span,) = tracer.spans()
        assert [e.name for e in span.events] == ["retry.attempt"]
        assert span.events[0].attributes["domain"] == "x.example"
        assert tracer.n_events == 1

    def test_orphan_events_surface_as_synthetic_span(self):
        tracer = Tracer()
        tracer.event("lonely", k=1)
        spans = tracer.spans()
        assert [s.name for s in spans] == ["(orphan)"]
        assert spans[0].span_id == 0
        assert [e.name for e in spans[0].events] == ["lonely"]
        assert tracer.n_events == 1

    def test_len_counts_finished_spans(self):
        tracer = Tracer()
        assert len(tracer) == 0
        with tracer.span("a"):
            assert len(tracer) == 0  # not finished yet
        assert len(tracer) == 1


class TestDecorator:
    def test_traced_wraps_calls(self):
        tracer = Tracer()

        @tracer.traced("fn_span", tagged=True)
        def fn(x):
            return x * 2

        assert fn(21) == 42
        (span,) = tracer.spans()
        assert span.name == "fn_span"
        assert span.attributes == {"tagged": True}

    def test_traced_default_name_is_qualname(self):
        tracer = Tracer()

        @tracer.traced()
        def some_function():
            return 1

        some_function()
        assert tracer.spans()[0].name.endswith("some_function")


class TestNullTracer:
    def test_is_disabled_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        # span() returns one shared object: zero allocation on hot paths
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", k=1)

    def test_all_operations_are_noops(self):
        with NULL_TRACER.span("x", n=1) as span:
            assert span.set(a=1) is span
            span.inc("count", 5)
        NULL_TRACER.event("e", k="v")
        assert NULL_TRACER.spans() == []
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.n_events == 0
        assert NULL_TRACER.current is None

    def test_traced_decorator_returns_function_unchanged(self):
        def fn():
            return "ok"

        assert NULL_TRACER.traced("name")(fn) is fn

    def test_exceptions_propagate_through_null_span(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("doomed"):
                raise ValueError("boom")


class TestSpanEvent:
    def test_event_as_dict(self):
        evt = SpanEvent(name="e", t=1.5, attributes={"k": "v"})
        assert evt.as_dict() == {"name": "e", "t": 1.5, "attrs": {"k": "v"}}
