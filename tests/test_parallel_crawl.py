"""Sharded parallel crawl: bit-identity with the serial crawler.

Covers the PR's tentpole invariants:

* ``crawl_sharded`` output (digest, stats, attempt logs, breaker summary,
  quarantine ledger) equals the serial crawl for any worker count, under
  every fault and payload profile;
* sharded-then-merged ``CrawlStats`` / ``BreakerBoard`` / quarantine
  equal their serial counterparts for *random domain partitions*
  (merging tested directly, independent of the executor);
* checkpoints are wire-compatible both ways — a serial checkpoint
  resumes under workers N and vice versa, byte-identical to an
  uninterrupted serial run;
* pipeline deterministic views match for ``workers ∈ {1, 2, 4}`` across
  seeds and fault/payload profiles;
* ``ReorderBuffer`` / ``partition_lanes`` unit behaviour and the
  executor's guard rails.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quarantine import Quarantine
from repro.web import (
    Crawler,
    PayloadFaultInjector,
    ReorderBuffer,
    RetryPolicy,
    crawl_sharded,
    partition_lanes,
    payload_profile,
    registrable_domain,
)

from .test_web_checkpoint import (
    PROFILES,
    build_net_and_links,
    crawler_for,
    set_profile,
)


@pytest.fixture(scope="module")
def arena():
    net, links = build_net_and_links()
    return net, links


def set_payload(net, profile):
    if profile == "none":
        net.set_payload_injector(None)
    else:
        net.set_payload_injector(
            PayloadFaultInjector(payload_profile(profile), seed=33)
        )


def quarantine_view(quarantine):
    return [record.to_dict() for record in quarantine.records]


def crawl_serial(net, links):
    quarantine = Quarantine()
    result = crawler_for(net).crawl(links, quarantine=quarantine)
    return result, quarantine


def crawl_parallel(net, links, workers, **kwargs):
    quarantine = Quarantine()
    result = crawl_sharded(
        crawler_for(net), links, workers=workers, quarantine=quarantine, **kwargs
    )
    return result, quarantine


class TestShardedEqualsSerial:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_all_profiles_all_worker_counts(self, arena, profile, workers):
        net, links = arena
        set_profile(net, profile)
        set_payload(net, "hostile")
        try:
            serial, q_serial = crawl_serial(net, links)
            parallel, q_parallel = crawl_parallel(net, links, workers)
            assert parallel.digest() == serial.digest()
            assert parallel.stats == serial.stats
            assert parallel.breaker_summary == serial.breaker_summary
            assert len(parallel.attempt_logs) == len(serial.attempt_logs)
            assert [log.to_dict() for log in parallel.attempt_logs] == [
                log.to_dict() for log in serial.attempt_logs
            ]
            assert quarantine_view(q_parallel) == quarantine_view(q_serial)
        finally:
            set_profile(net, "none")
            set_payload(net, "none")

    @given(
        order_seed=st.integers(0, 2**32 - 1),
        workers=st.integers(1, 6),
        n_links=st.integers(0, 25),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_link_subsets_and_orders(self, arena, order_seed, workers, n_links):
        """Property: identity holds for arbitrary link subsequences."""
        import numpy as np

        net, links = arena
        rng = np.random.default_rng(order_seed)
        subset = [links[int(i)] for i in rng.integers(0, len(links), size=n_links)]
        set_profile(net, "hostile")
        try:
            serial, q_serial = crawl_serial(net, subset)
            parallel, q_parallel = crawl_parallel(net, subset, workers)
            assert parallel.digest() == serial.digest()
            assert parallel.stats == serial.stats
            assert parallel.breaker_summary == serial.breaker_summary
            assert quarantine_view(q_parallel) == quarantine_view(q_serial)
        finally:
            set_profile(net, "none")


class TestMergeProperties:
    """Merging per-domain shards directly (no executor) equals serial."""

    @given(partition_seed=st.integers(0, 2**32 - 1), n_groups=st.integers(1, 5))
    @settings(max_examples=12, deadline=None)
    def test_random_domain_partition_merge(self, arena, partition_seed, n_groups):
        import numpy as np

        net, links = arena
        set_profile(net, "hostile")
        set_payload(net, "hostile")
        try:
            serial, q_serial = crawl_serial(net, links)

            # Randomly partition *domains* into groups; crawl each group
            # with a fresh crawler (its own stats/breakers/clock) in
            # original relative link order, then merge.
            rng = np.random.default_rng(partition_seed)
            domains = sorted({registrable_domain(link.url.domain) for link in links})
            assignment = {d: int(rng.integers(0, n_groups)) for d in domains}
            merged_stats = None
            merged_breakers = None
            quarantines = []
            for group in range(n_groups):
                group_links = [
                    (index, link)
                    for index, link in enumerate(links)
                    if assignment[registrable_domain(link.url.domain)] == group
                ]
                if not group_links:
                    continue
                quarantine = Quarantine()
                crawler = crawler_for(net)
                state = crawler.restore_state(None)
                for _ in crawler.resolve_links(
                    group_links, state, quarantine=quarantine
                ):
                    pass
                quarantines.append(quarantine)
                merged_stats = (
                    state.stats
                    if merged_stats is None
                    else merged_stats.merge(state.stats)
                )
                merged_breakers = (
                    state.breakers
                    if merged_breakers is None
                    else merged_breakers.merge(state.breakers)
                )

            assert merged_stats == serial.stats
            assert merged_breakers is not None
            assert merged_breakers.as_dict() == serial.breaker_summary
            # Quarantine: per-group ledgers concatenate to the serial
            # ledger up to ordering (groups interleave domains).
            merged_records = sorted(
                (r.ref, r.error_type, r.message)
                for q in quarantines
                for r in q.records
            )
            serial_records = sorted(
                (r.ref, r.error_type, r.message) for r in q_serial.records
            )
            assert merged_records == serial_records
        finally:
            set_profile(net, "none")
            set_payload(net, "none")


class TestCheckpointWireCompat:
    @pytest.mark.parametrize("profile", ["none", "hostile"])
    @pytest.mark.parametrize(
        "first_workers,second_workers", [(4, None), (None, 4), (1, 4), (4, 1)]
    )
    def test_cross_mode_resume(
        self, arena, tmp_path, profile, first_workers, second_workers
    ):
        """Interrupt under one mode, resume under the other: byte-identical
        result to an uninterrupted serial crawl."""
        net, links = arena
        set_profile(net, profile)
        try:
            baseline, q_base = crawl_serial(net, links)

            path = tmp_path / f"ckpt-{profile}-{first_workers}-{second_workers}.json"
            split = len(links) // 2
            quarantine = Quarantine()
            crawler_for(net).crawl(
                links[:split],
                checkpoint=str(path),
                checkpoint_every=3,
                quarantine=quarantine,
                workers=first_workers,
            )
            resumed = crawler_for(net).crawl(
                links,
                checkpoint=str(path),
                quarantine=quarantine,
                workers=second_workers,
            )
            assert resumed.digest() == baseline.digest()
            assert resumed.stats == baseline.stats
            assert resumed.breaker_summary == baseline.breaker_summary
        finally:
            set_profile(net, "none")

    def test_checkpoint_file_identical_across_worker_counts(self, arena, tmp_path):
        """Completed checkpoint files are byte-identical for any workers."""
        net, links = arena
        set_profile(net, "flaky")
        try:
            blobs = {}
            for workers in (None, 1, 3):
                path = tmp_path / f"full-{workers}.json"
                crawler_for(net).crawl(
                    links, checkpoint=str(path), workers=workers
                )
                blobs[workers] = path.read_bytes()
            assert blobs[None] == blobs[1] == blobs[3]
        finally:
            set_profile(net, "none")


class TestExecutorMechanics:
    def test_partition_lanes_first_appearance_order(self, arena):
        _, links = arena
        lanes = partition_lanes(links)
        seen = []
        indices = []
        for domain, items in lanes:
            assert domain not in seen
            seen.append(domain)
            for index, link in items:
                assert links[index] is link
                assert registrable_domain(link.url.domain) == domain
                indices.append(index)
        assert sorted(indices) == list(range(len(links)))
        # First-appearance order of domains.
        first_seen = []
        for link in links:
            d = registrable_domain(link.url.domain)
            if d not in first_seen:
                first_seen.append(d)
        assert seen == first_seen

    def test_workers_must_be_positive(self, arena):
        net, links = arena
        with pytest.raises(ValueError):
            crawl_sharded(crawler_for(net), links, workers=0)

    def test_global_retry_budget_rejected(self, arena):
        net, links = arena
        crawler = Crawler(
            net,
            retry_policy=RetryPolicy(max_attempts=2, retry_budget=5),
            breaker_threshold=4,
            breaker_cooldown=5.0,
        )
        with pytest.raises(ValueError):
            crawl_sharded(crawler, links, workers=2)

    def test_reorder_buffer_orders_out_of_order_deposits(self):
        buffer = ReorderBuffer(capacity=4)
        results = []
        done = threading.Event()

        def consumer():
            for _ in range(4):
                results.append(buffer.take())
            done.set()

        thread = threading.Thread(target=consumer)
        thread.start()
        for index in (2, 0, 3, 1):
            buffer.deposit(index, f"lane-{index}")
        assert done.wait(timeout=5.0)
        thread.join(timeout=5.0)
        assert results == ["lane-0", "lane-1", "lane-2", "lane-3"]
        buffer.close()

    def test_reorder_buffer_bounded_but_accepts_next_needed(self):
        buffer = ReorderBuffer(capacity=1)
        # Fill the single slot with an out-of-order deposit...
        buffer.deposit(1, "b")
        # ...the next-needed index must still be accepted (no deadlock).
        buffer.deposit(0, "a")
        assert buffer.take() == "a"
        assert buffer.take() == "b"
        buffer.close()

    def test_reorder_buffer_close_unblocks_take(self):
        buffer = ReorderBuffer(capacity=2)
        errors = []

        def consumer():
            try:
                buffer.take()
            except RuntimeError as exc:
                errors.append(exc)

        thread = threading.Thread(target=consumer)
        thread.start()
        buffer.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(errors) == 1


class TestPipelineDeterministicViews:
    @pytest.mark.parametrize("seed", [3, 7])
    @pytest.mark.parametrize("profile", ["none", "hostile"])
    def test_views_match_across_worker_counts(self, seed, profile):
        from repro import build_world, run_pipeline
        from repro.obs import RunTelemetry, Tracer
        from repro.synth.world import WorldConfig

        kwargs = dict(seed=seed, scale=0.01)
        if profile == "hostile":
            kwargs.update(fault_profile="hostile", payload_profile="hostile")

        views = {}
        snapshots = {}
        for workers in (None, 1, 2, 4):
            world = build_world(WorldConfig(**kwargs))
            telemetry = RunTelemetry(tracer=Tracer())
            report = run_pipeline(world, workers=workers, telemetry=telemetry)
            views[workers] = {
                "digest": report.crawl.digest(),
                "quarantine": [r.to_dict() for r in report.quarantine.records],
                "funnel": telemetry.funnel(),
            }
            if workers is not None:
                snapshots[workers] = telemetry.deterministic_snapshot()
        assert views[None] == views[1] == views[2] == views[4]
        assert snapshots[1] == snapshots[2] == snapshots[4]
