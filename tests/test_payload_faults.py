"""Tests for the corrupt-payload injector and its determinism contract."""

import numpy as np
import pytest

from repro.media.image import ImageKind, SyntheticImage, sample_latent
from repro.media.pack import Pack
from repro.media.validate import CorruptPayloadError, validate_raster
from repro.web.crawler import content_digest
from repro.web.payload_faults import (
    CORRUPTION_KINDS,
    CorruptImage,
    PAYLOAD_PROFILES,
    PayloadFaultInjector,
    PayloadFaultProfile,
    PayloadFaultSpec,
    corrupt_raster,
    payload_profile,
    stable_noise_seed,
)


def make_image(image_id=1, seed=0):
    rng = np.random.default_rng(seed)
    return SyntheticImage(image_id, sample_latent(rng, ImageKind.MODEL_DRESSED))


def make_pack(pack_id=1, n=4, seed=0):
    rng = np.random.default_rng(seed)
    images = [
        SyntheticImage(100 + i, sample_latent(rng, ImageKind.MODEL_DRESSED))
        for i in range(n)
    ]
    return Pack(pack_id=pack_id, model_id=1, images=images)


class TestCorruptRaster:
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_every_kind_fails_validation(self, kind):
        """The taxonomy must catch every corruption the injector can emit —
        this is what makes `injected == quarantined` an invariant."""
        raster = make_image().pixels
        payload = corrupt_raster(raster, kind, np.random.default_rng(0))
        with pytest.raises(CorruptPayloadError):
            validate_raster(payload)

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_input_never_mutated(self, kind):
        raster = make_image().pixels
        before = raster.copy()
        corrupt_raster(raster, kind, np.random.default_rng(0))
        np.testing.assert_array_equal(raster, before)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown corruption kind"):
            corrupt_raster(make_image().pixels, "bitrot", np.random.default_rng(0))

    def test_truncated_keeps_under_min_dim(self):
        raster = make_image().pixels
        for seed in range(5):
            out = corrupt_raster(raster, "truncated", np.random.default_rng(seed))
            assert 1 <= out.shape[0] < 8


class TestCorruptImage:
    def test_pixels_are_corrupt_and_lazy(self):
        base = make_image()
        view = CorruptImage(base, "nan_pixels", noise_seed=42)
        assert view._pixels is None  # lazy until accessed
        assert np.isnan(view.pixels).any()

    def test_hosted_original_untouched(self):
        base = make_image()
        clean = base.pixels.copy()
        view = CorruptImage(base, "nan_pixels", noise_seed=42)
        _ = view.pixels
        np.testing.assert_array_equal(base.pixels, clean)

    def test_rerender_is_deterministic(self):
        base = make_image()
        view = CorruptImage(base, "nan_pixels", noise_seed=42)
        first = view.pixels.copy()
        view.drop_pixels()
        np.testing.assert_array_equal(view.pixels, first)

    def test_identity_preserved(self):
        base = make_image(image_id=77)
        view = CorruptImage(base, "rgba", noise_seed=1)
        assert view.image_id == 77
        assert view.latent is base.latent

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CorruptImage(make_image(), "bitrot", noise_seed=0)


class TestStableNoiseSeed:
    def test_deterministic(self):
        assert stable_noise_seed(7, "u", "a") == stable_noise_seed(7, "u", "a")

    def test_sensitive_to_every_part(self):
        base = stable_noise_seed(7, "u", "a")
        assert stable_noise_seed(8, "u", "a") != base
        assert stable_noise_seed(7, "v", "a") != base
        assert stable_noise_seed(7, "u", "b") != base

    def test_in_64_bit_range(self):
        seed = stable_noise_seed(0, "x")
        assert 0 <= seed < 2**64


class TestSpecAndProfiles:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            PayloadFaultSpec(corrupt_rate=1.5)

    def test_unknown_kind_in_weights(self):
        with pytest.raises(ValueError):
            PayloadFaultSpec(corrupt_rate=0.1, kind_weights={"bitrot": 1.0})

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            PayloadFaultSpec(corrupt_rate=0.1, kind_weights={"truncated": -1.0})

    def test_normalized_weights_cumulative(self):
        pairs = PayloadFaultSpec(corrupt_rate=0.5).normalized_weights()
        assert [kind for kind, _ in pairs] == list(CORRUPTION_KINDS)
        assert pairs[-1][1] == pytest.approx(1.0)

    def test_zero_total_weight_rejected(self):
        spec = PayloadFaultSpec(corrupt_rate=0.5, kind_weights={"truncated": 0.0})
        with pytest.raises(ValueError, match="weight > 0"):
            spec.normalized_weights()

    def test_builtin_profiles(self):
        assert set(PAYLOAD_PROFILES) == {"none", "dirty", "hostile"}
        assert payload_profile("none").default.corrupt_rate == 0.0
        assert 0 < payload_profile("dirty").default.corrupt_rate
        assert (
            payload_profile("dirty").default.corrupt_rate
            < payload_profile("hostile").default.corrupt_rate
        )

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown payload profile"):
            payload_profile("cursed")

    def test_spec_for_override(self):
        profile = PayloadFaultProfile(
            "t",
            PayloadFaultSpec(corrupt_rate=0.1),
            overrides={"imgur.com": PayloadFaultSpec(corrupt_rate=0.9)},
        )
        assert profile.spec_for("imgur.com").corrupt_rate == 0.9
        assert profile.spec_for("gyazo.com").corrupt_rate == 0.1


class TestInjector:
    def always(self, **kw):
        return PayloadFaultInjector(
            PayloadFaultProfile("all", PayloadFaultSpec(corrupt_rate=1.0, **kw)),
            seed=5,
        )

    def never(self):
        return PayloadFaultInjector(payload_profile("none"), seed=5)

    def test_decide_pure_function(self):
        a = PayloadFaultInjector(payload_profile("hostile"), seed=9)
        b = PayloadFaultInjector(payload_profile("hostile"), seed=9)
        urls = [f"https://imgur.com/{i}" for i in range(200)]
        assert [a.decide("imgur.com", u) for u in urls] == [
            b.decide("imgur.com", u) for u in urls
        ]

    def test_decide_rate_zero_never_fires(self):
        inj = self.never()
        assert all(
            inj.decide("imgur.com", f"https://imgur.com/{i}") is None
            for i in range(100)
        )

    def test_decide_rate_one_always_fires(self):
        inj = self.always()
        kinds = {inj.decide("imgur.com", f"https://imgur.com/{i}") for i in range(100)}
        assert None not in kinds
        assert kinds <= set(CORRUPTION_KINDS)
        assert len(kinds) > 3  # uniform default exercises many modes

    def test_kind_weights_respected(self):
        inj = self.always(kind_weights={"decoy_bytes": 1.0})
        for i in range(50):
            assert inj.decide("imgur.com", f"https://imgur.com/{i}") == "decoy_bytes"

    def test_rate_roughly_honoured(self):
        inj = PayloadFaultInjector(payload_profile("hostile"), seed=1)
        hits = sum(
            inj.decide("imgur.com", f"https://imgur.com/{i}") is not None
            for i in range(2000)
        )
        assert 0.18 < hits / 2000 < 0.32  # rate 0.25

    def test_corrupt_image_wrapped_and_counted(self):
        inj = self.always(kind_weights={"uint8": 1.0})
        image = make_image()
        out = inj.corrupt_resource("https://imgur.com/a", "imgur.com", image)
        assert isinstance(out, CorruptImage)
        assert out.pixels.dtype == np.uint8
        assert inj.n_injected == 1
        assert inj.by_kind == {"uint8": 1}

    def test_clean_image_passes_through_identically(self):
        inj = self.never()
        image = make_image()
        assert inj.corrupt_resource("https://imgur.com/a", "imgur.com", image) is image
        assert inj.n_injected == 0

    def test_clean_pack_passes_through_identically(self):
        inj = self.never()
        pack = make_pack()
        assert inj.corrupt_resource("https://mega.nz/p", "mega.nz", pack) is pack

    def test_pack_members_keyed_individually(self):
        inj = PayloadFaultInjector(
            PayloadFaultProfile("half", PayloadFaultSpec(corrupt_rate=0.5)), seed=3
        )
        pack = make_pack(n=24)
        out = inj.corrupt_resource("https://mega.nz/p", "mega.nz", pack)
        corrupt = [im for im in out.images if isinstance(im, CorruptImage)]
        clean = [im for im in out.images if not isinstance(im, CorruptImage)]
        assert corrupt and clean  # a partial archive, not all-or-nothing
        assert inj.n_injected == len(corrupt)
        # clean members are the original objects, untouched
        assert all(im in pack.images for im in clean)
        assert out.pack_id == pack.pack_id

    def test_pack_corruption_deterministic(self):
        def run():
            inj = PayloadFaultInjector(
                PayloadFaultProfile("half", PayloadFaultSpec(corrupt_rate=0.5)),
                seed=3,
            )
            out = inj.corrupt_resource("https://mega.nz/p", "mega.nz", make_pack(n=24))
            return [
                im.corruption if isinstance(im, CorruptImage) else None
                for im in out.images
            ]

        assert run() == run()

    def test_same_url_same_corruption_across_fetches(self):
        """Corruption is keyed on the URL, not the attempt — the property
        checkpoint replay relies on."""
        inj = self.always()
        first = inj.corrupt_resource("https://imgur.com/a", "imgur.com", make_image())
        second = inj.corrupt_resource("https://imgur.com/a", "imgur.com", make_image())
        assert first.corruption == second.corruption
        np.testing.assert_array_equal(first.pixels, second.pixels)


class TestContentDigestDtype:
    def test_dtype_folds_into_digest(self):
        """Regression: two rasters with the same shape and identical raw
        bytes but different dtypes are different files and must not
        collide in the dedup step."""

        class Raw:
            def __init__(self, pixels):
                self.pixels = pixels

        as_float64 = np.arange(3, dtype=np.float64).reshape(1, 1, 3)
        as_int64 = as_float64.view(np.int64)  # same shape, same bytes
        assert as_float64.shape == as_int64.shape
        assert as_float64.tobytes() == as_int64.tobytes()
        digests = {content_digest(Raw(as_float64)), content_digest(Raw(as_int64))}
        assert len(digests) == 2

    def test_same_content_same_digest(self):
        image = make_image(seed=4)
        clone = make_image(seed=4)
        assert content_digest(image) == content_digest(clone)
