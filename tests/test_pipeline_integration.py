"""End-to-end pipeline integration tests: cross-stage invariants."""

import pytest

from repro import build_world, pipeline_for_world, run_pipeline
from repro.web import FetchStatus


class TestPipelineReport:
    def test_selection_covers_every_summary(self, report):
        total = sum(s.n_threads for s in report.forum_summaries)
        assert total == len(report.selection)

    def test_tops_subset_of_selection(self, report):
        selection_ids = {t.thread_id for t in report.selection}
        assert all(t.thread_id in selection_ids for t in report.tops)

    def test_tops_per_forum_totals(self, report):
        assert sum(report.tops_per_forum.values()) == len(report.tops)

    def test_links_originate_from_tops(self, report):
        top_ids = {t.thread_id for t in report.tops}
        for link in report.links.all_links:
            assert link.thread_id in top_ids

    def test_crawl_status_accounting(self, report):
        stats = report.crawl.stats
        assert stats.n_links == len(report.links.all_links)
        assert sum(stats.by_status.values()) == stats.n_links

    def test_registration_walls_respected(self, report):
        """Dropbox/Drive packs are never downloaded (§4.2)."""
        walls = report.crawl.stats.count(FetchStatus.REGISTRATION_REQUIRED)
        for crawled in report.crawl.pack_images:
            assert crawled.link.url.host not in ("dropbox.com", "drive.google.com")

    def test_unique_files_not_more_than_downloads(self, report):
        assert report.crawl.n_unique_files <= len(report.crawl.all_images)

    def test_duplicates_exist(self, report):
        """§4.2: free packs are saturated — duplicates are expected."""
        if len(report.crawl.pack_images) > 200:
            assert report.crawl.n_unique_files < len(report.crawl.all_images)

    def test_preview_verdicts_cover_clean_previews(self, report):
        matched = report.abuse.matched_digests
        clean = [c for c in report.crawl.preview_images if c.digest not in matched]
        assert len(report.preview_verdicts) == len(clean)

    def test_provenance_queries_bounded_by_sampling(self, report):
        n_packs = len(report.crawl.packs)
        assert len(report.provenance.pack_outcomes) <= 3 * n_packs

    def test_actor_metrics_cover_selection_authors(self, report):
        metrics = report.actor_analyzer.metrics()
        for thread in report.selection[:200]:
            assert thread.author_id in metrics

    def test_vision_cache_recorded_and_used(self, report):
        """The shared VisionCache must see cross-stage reuse."""
        stats = report.vision_cache_stats
        assert stats is not None
        assert stats.n_entries > 0
        # NSFV previews are re-queried by provenance (§4.5), so at least
        # those lookups must be served from cache.
        assert stats.hits > 0
        assert 0.0 < stats.hit_rate <= 1.0
        assert "hits=" in stats.summary()


class TestOracleDiscipline:
    def test_pipeline_runs_without_world_ground_truth(self, world):
        """The pipeline only touches ground truth through the two oracle
        callables — a run with independently supplied oracles works."""
        pipeline = pipeline_for_world(world)
        truth_types = dict(world.forums.thread_types)
        proof_truth = dict(world.forums.proof_truth)
        report = pipeline.run(
            top_oracle=lambda tid: truth_types.get(tid) == "top",
            proof_oracle=proof_truth.get,
            annotate_n=300,
        )
        assert report.n_annotated == 300

    def test_annotation_sample_too_small_rejected(self, world):
        pipeline = pipeline_for_world(world)
        with pytest.raises(ValueError):
            pipeline.run(
                top_oracle=lambda tid: True,
                proof_oracle=lambda iid: None,
                annotate_n=5,
            )


class TestDeterminism:
    def test_same_seed_same_report(self):
        config = dict(seed=19, scale=0.006, with_other_activity=False)
        report_a = run_pipeline(build_world(**config), annotate_n=200)
        report_b = run_pipeline(build_world(**config), annotate_n=200)
        assert report_a.extraction_stats == report_b.extraction_stats
        assert len(report_a.links.all_links) == len(report_b.links.all_links)
        assert report_a.earnings.total_usd == report_b.earnings.total_usd
        assert report_a.provenance.summary("packs") == report_b.provenance.summary("packs")
