"""Process-pool crawl executor: bit-identity, arenas, wire compat.

Covers the PR's tentpole invariants for :mod:`repro.web.procpool`:

* ``crawl_procpool`` output (digest, stats, attempt logs, breaker
  summary, quarantine ledger) equals the serial crawl for worker counts
  {1, 2, 4} under every fault and payload profile;
* :class:`ShardState` survives a pickle round trip exactly (the chunk
  protocol ships it both ways);
* the shared-memory raster arena round-trips bytes/dtype/shape
  identically (property-tested over random rasters) and never leaks a
  ``/dev/shm`` segment — on normal exit *and* on a BaseException unwind
  out of the scheduler;
* checkpoints are wire-compatible across executors in both directions;
* the pipeline's ``measurement_view`` / cache statistics are identical
  for serial vs thread vs process runs (streamed NSFV + provenance);
* a pathological single-domain world splits into chunks, bounds its
  held-lane window, and still produces serial bits (the configurable
  ReorderBuffer bound regression).
"""

import glob
import os
import pickle
import types

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quarantine import Quarantine
from repro.web import (
    Crawler,
    PayloadFaultInjector,
    RetryPolicy,
    crawl_procpool,
    payload_profile,
)
from repro.web.procpool import (
    MIN_CHUNK_LINKS,
    adopt_arena,
    export_arena,
    plan_chunks,
)

from .test_web_checkpoint import (
    PROFILES,
    build_net_and_links,
    crawler_for,
    set_profile,
)


@pytest.fixture(scope="module")
def arena():
    net, links = build_net_and_links()
    return net, links


def set_payload(net, profile):
    if profile == "none":
        net.set_payload_injector(None)
    else:
        net.set_payload_injector(
            PayloadFaultInjector(payload_profile(profile), seed=33)
        )


def quarantine_view(quarantine):
    return [record.to_dict() for record in quarantine.records]


def crawl_serial(net, links):
    quarantine = Quarantine()
    result = crawler_for(net).crawl(links, quarantine=quarantine)
    return result, quarantine


def crawl_process(net, links, workers, **kwargs):
    quarantine = Quarantine()
    result = crawl_procpool(
        crawler_for(net), links, workers=workers, quarantine=quarantine,
        **kwargs,
    )
    return result, quarantine


def shm_segments():
    """Names of live POSIX shared-memory segments (leak detector)."""
    return set(glob.glob("/dev/shm/psm_*"))


# ----------------------------------------------------------------------
# ShardState pickling
# ----------------------------------------------------------------------

class TestShardStatePickle:
    def test_fresh_state_round_trip(self, arena):
        net, _ = arena
        state = crawler_for(net).restore_state(None)
        clone = pickle.loads(pickle.dumps(state))
        assert clone.stats == state.stats
        assert clone.breakers.snapshot() == state.breakers.snapshot()
        assert clone.clocks == state.clocks
        assert clone.budget_spent == state.budget_spent
        assert clone.base_clock == state.base_clock

    def test_crawled_state_round_trip(self, arena):
        """A state that has actually crawled (non-trivial stats, clocks,
        breaker history) must survive the pickle both ways bit-exactly."""
        net, links = arena
        set_profile(net, "hostile")
        try:
            crawler = crawler_for(net)
            state = crawler.restore_state(None)
            for _ in crawler.resolve_links(
                list(enumerate(links)), state, quarantine=Quarantine()
            ):
                pass
        finally:
            set_profile(net, "none")
        clone = pickle.loads(pickle.dumps(state))
        assert clone.stats == state.stats
        assert clone.breakers.snapshot() == state.breakers.snapshot()
        assert clone.clocks == state.clocks
        assert clone.budget_spent == state.budget_spent


# ----------------------------------------------------------------------
# Shared-memory arena round trip
# ----------------------------------------------------------------------

def _fake_outcome(rasters):
    """A minimal outcome-shaped object for the arena walker."""
    images = [types.SimpleNamespace(_pixels=r) for r in rasters]
    previews = [types.SimpleNamespace(image=img) for img in images]
    return types.SimpleNamespace(
        preview_images=previews, pack_images=[], packs=[]
    ), images


_DTYPES = st.sampled_from(["float32", "float64", "uint8", "int16"])
_SHAPES = st.tuples(
    st.integers(1, 12), st.integers(1, 12), st.integers(1, 4)
)


class TestArenaRoundTrip:
    @given(specs=st.lists(st.tuples(_SHAPES, _DTYPES), min_size=1, max_size=6),
           seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_bytes_dtype_shape_identity(self, specs, seed):
        """Property: any raster set survives export → adopt bit-exactly
        and the segment is gone from /dev/shm before views are used."""
        rng = np.random.default_rng(seed)
        rasters = []
        for shape, dtype in specs:
            if dtype.startswith("float"):
                raster = rng.random(shape).astype(dtype)
            else:
                raster = rng.integers(0, 100, size=shape).astype(dtype)
            rasters.append(raster)
        originals = [r.copy() for r in rasters]
        outcome, images = _fake_outcome(rasters)

        before = shm_segments()
        descriptor = export_arena([outcome])
        assert descriptor is not None
        # Export strips the in-object rasters: pickling the outcomes
        # must never ship pixel bytes.
        assert all(img._pixels is None for img in images)
        adopted = adopt_arena(descriptor, [outcome])
        assert adopted == descriptor["size"]
        # Adoption unlinks immediately: no new /dev/shm entries remain
        # even while the views are alive.
        assert shm_segments() <= before
        for img, original in zip(images, originals):
            assert img._pixels is not None
            assert img._pixels.shape == original.shape
            assert img._pixels.dtype == original.dtype
            assert img._pixels.tobytes() == original.tobytes()

    def test_nothing_materialised_exports_none(self):
        outcome, _ = _fake_outcome([])
        assert export_arena([outcome]) is None
        assert adopt_arena(None, [outcome]) == 0

    def test_export_unlinks_on_failure(self):
        """A BaseException mid-export must not leak the segment."""
        raster = np.ones((4, 4), dtype=np.float64)

        class Hostile:
            # Looks enough like an ndarray for slot planning, then blows
            # up when the copy into the segment dereferences it.
            shape = raster.shape
            dtype = raster.dtype
            nbytes = raster.nbytes

            def __array__(self, *a, **k):
                raise KeyboardInterrupt("mid-export death")

        outcome, _ = _fake_outcome([Hostile()])
        before = shm_segments()
        with pytest.raises(BaseException):
            export_arena([outcome])
        assert shm_segments() <= before


# ----------------------------------------------------------------------
# Process crawl ≡ serial crawl
# ----------------------------------------------------------------------

class TestProcpoolEqualsSerial:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_all_profiles_all_worker_counts(self, arena, profile, workers):
        net, links = arena
        set_profile(net, profile)
        set_payload(net, "hostile")
        before = shm_segments()
        try:
            serial, q_serial = crawl_serial(net, links)
            parallel, q_parallel = crawl_process(net, links, workers)
            assert parallel.digest() == serial.digest()
            assert parallel.stats == serial.stats
            assert parallel.breaker_summary == serial.breaker_summary
            assert [log.to_dict() for log in parallel.attempt_logs] == [
                log.to_dict() for log in serial.attempt_logs
            ]
            assert quarantine_view(q_parallel) == quarantine_view(q_serial)
        finally:
            set_profile(net, "none")
            set_payload(net, "none")
        assert shm_segments() <= before

    def test_crawler_dispatch_via_executor_kwarg(self, arena):
        net, links = arena
        serial, _ = crawl_serial(net, links)
        quarantine = Quarantine()
        result = crawler_for(net).crawl(
            links, workers=2, executor="process", quarantine=quarantine
        )
        assert result.digest() == serial.digest()

    def test_process_requires_workers(self, arena):
        net, links = arena
        with pytest.raises(ValueError):
            crawler_for(net).crawl(links, executor="process")
        with pytest.raises(ValueError):
            crawler_for(net).crawl(links, workers=2, executor="bogus")

    def test_global_retry_budget_rejected(self, arena):
        net, links = arena
        crawler = Crawler(
            net,
            retry_policy=RetryPolicy(max_attempts=2, retry_budget=5),
            breaker_threshold=4,
            breaker_cooldown=5.0,
        )
        with pytest.raises(ValueError):
            crawl_procpool(crawler, links, workers=2)

    def test_scheduler_unwind_leaks_no_segments(self, arena):
        """A consumer raising out of on_lane unwinds the whole pool;
        adopted and undelivered arenas must all be reclaimed."""
        from repro.web import partition_lanes

        net, links = arena
        n_lanes = len(partition_lanes(links))
        before = shm_segments()

        def explode(index, domain, outcomes):
            # Raise on the final lane: every chunk has been received by
            # then, so no worker is mid-export when the pool unwinds
            # (a mid-export SIGTERM is reclaimed by the resource
            # tracker, but only at interpreter shutdown).
            if index == n_lanes - 1:
                raise RuntimeError("downstream consumer died")

        with pytest.raises(RuntimeError, match="consumer died"):
            crawl_procpool(
                crawler_for(net), links, workers=2, on_lane=explode
            )
        assert shm_segments() <= before


# ----------------------------------------------------------------------
# Checkpoint wire compatibility across executors
# ----------------------------------------------------------------------

class TestCheckpointWireCompat:
    @pytest.mark.parametrize("profile", ["none", "hostile"])
    @pytest.mark.parametrize(
        "first,second",
        [("process", None), (None, "process"),
         ("process", "thread"), ("thread", "process")],
    )
    def test_cross_executor_resume(self, arena, tmp_path, profile, first, second):
        """Interrupt under one executor, resume under the other:
        byte-identical to an uninterrupted serial crawl."""
        net, links = arena
        set_profile(net, profile)
        try:
            baseline, _ = crawl_serial(net, links)
            path = tmp_path / f"ckpt-{profile}-{first}-{second}.json"
            split = len(links) // 2
            quarantine = Quarantine()

            def run(executor, subset):
                workers = None if executor is None else 2
                return crawler_for(net).crawl(
                    subset, checkpoint=str(path), checkpoint_every=3,
                    quarantine=quarantine, workers=workers,
                    executor=executor if executor else None,
                )

            run(first, links[:split])
            resumed = run(second, links)
            assert resumed.digest() == baseline.digest()
            assert resumed.stats == baseline.stats
            assert resumed.breaker_summary == baseline.breaker_summary
        finally:
            set_profile(net, "none")

    def test_checkpoint_file_identical_across_executors(self, arena, tmp_path):
        net, links = arena
        set_profile(net, "flaky")
        try:
            blobs = {}
            for key, kwargs in {
                "serial": {},
                "thread": {"workers": 3},
                "process": {"workers": 3, "executor": "process"},
            }.items():
                path = tmp_path / f"full-{key}.json"
                crawler_for(net).crawl(links, checkpoint=str(path), **kwargs)
                blobs[key] = path.read_bytes()
            assert blobs["serial"] == blobs["thread"] == blobs["process"]
        finally:
            set_profile(net, "none")


# ----------------------------------------------------------------------
# Single-domain pathology: chunk splitting + bounded windows
# ----------------------------------------------------------------------

def _single_domain_world(n_links):
    from datetime import datetime

    from repro.media import ImageKind, SyntheticImage, sample_latent
    from repro.web import (
        HostingService, LinkRecord, ServiceKind, SimulatedInternet,
    )

    rng = np.random.default_rng(5)
    net = SimulatedInternet(seed=13)
    host = HostingService(
        "mono", "mono.com", ServiceKind.IMAGE_SHARING, 1.0, 0.0, 0.0
    )
    links = []
    for i in range(n_links):
        image = SyntheticImage(
            9000 + i, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1)
        )
        url = net.host_on_service(host, image, datetime(2014, 5, 1), False)
        links.append(LinkRecord(url=url, link_kind="preview"))
    return net, links


class TestSingleDomainPathology:
    def test_hot_lane_splits_into_chunks(self):
        net, links = _single_domain_world(4 * MIN_CHUNK_LINKS)
        crawler = crawler_for(net)
        state = crawler.restore_state(None)
        chunks, lane_ids = plan_chunks(
            links, base_state=state, completed=None,
            policy=crawler._policy, workers=4, fault_injector=None,
        )
        assert len(lane_ids) == 1
        assert len(chunks) > 1
        assert all(c.n_links >= 1 for c in chunks)
        assert sorted(i for c in chunks for i, _ in c.items) == list(
            range(len(links))
        )

    def test_fault_injector_vetoes_splitting(self):
        net, links = _single_domain_world(4 * MIN_CHUNK_LINKS)
        set_profile(net, "hostile")
        try:
            crawler = crawler_for(net)
            state = crawler.restore_state(None)
            chunks, _ = plan_chunks(
                links, base_state=state, completed=None,
                policy=crawler._policy, workers=4,
                fault_injector=net.fault_injector,
            )
            assert len(chunks) == 1
        finally:
            set_profile(net, "none")

    @pytest.mark.parametrize("workers", [2, 4])
    def test_single_domain_bits_match_serial(self, workers):
        net, links = _single_domain_world(4 * MIN_CHUNK_LINKS)
        serial, q_serial = crawl_serial(net, links)
        parallel, q_parallel = crawl_process(net, links, workers)
        assert parallel.digest() == serial.digest()
        assert parallel.stats == serial.stats
        assert quarantine_view(q_parallel) == quarantine_view(q_serial)

    def test_single_domain_thread_executor_stream_capacity_one(self):
        """Regression: a one-lane world with the tightest stream bound
        must not deadlock the thread executor's reorder buffer."""
        from repro.web import crawl_sharded

        net, links = _single_domain_world(2 * MIN_CHUNK_LINKS)
        serial, _ = crawl_serial(net, links)
        result = crawl_sharded(
            crawler_for(net), links, workers=4, stream_capacity=1
        )
        assert result.digest() == serial.digest()

    def test_procpool_stream_capacity_one(self):
        net, links = _single_domain_world(2 * MIN_CHUNK_LINKS)
        serial, _ = crawl_serial(net, links)
        result, _ = crawl_process(net, links, 4, stream_capacity=1)
        assert result.digest() == serial.digest()


# ----------------------------------------------------------------------
# Pipeline-level identity (streamed NSFV + provenance)
# ----------------------------------------------------------------------

class TestPipelineIdentity:
    @pytest.mark.parametrize("profile", ["none", "hostile"])
    def test_measurement_views_match_across_executors(self, profile):
        from repro import build_world, run_pipeline
        from repro.obs import RunTelemetry, Tracer
        from repro.synth.world import WorldConfig

        kwargs = dict(seed=3, scale=0.008)
        if profile == "hostile":
            kwargs.update(fault_profile="hostile", payload_profile="dirty")

        views = {}
        for key, run_kwargs in {
            "serial": {},
            "thread2": {"workers": 2},
            "process2": {"workers": 2, "executor": "process"},
            "process4": {"workers": 4, "executor": "process"},
        }.items():
            world = build_world(WorldConfig(**kwargs))
            telemetry = RunTelemetry(tracer=Tracer())
            report = run_pipeline(world, telemetry=telemetry, **run_kwargs)
            views[key] = {
                "digest": report.crawl.digest(),
                "quarantine": [
                    r.to_dict() for r in report.quarantine.records
                ],
                "measurement": telemetry.measurement_view(),
                # Streamed NSFV/provenance must not change what the
                # vision cache sees: stats are part of the contract.
                "cache": report.vision_cache_stats.as_dict()
                if report.vision_cache_stats is not None else None,
            }
        assert views["serial"] == views["thread2"]
        assert views["serial"] == views["process2"]
        assert views["serial"] == views["process4"]

    def test_world_config_executor_default(self):
        from repro.synth.world import WorldConfig

        assert WorldConfig(seed=1).crawl_executor == "thread"
        with pytest.raises(ValueError):
            WorldConfig(seed=1, crawl_executor="bogus")
