"""Tests for the record-level quarantine ledger."""

import numpy as np
import pytest

from repro.core.quarantine import Quarantine, QuarantineRecord
from repro.media.validate import NonFinitePixelError


def poison():
    return np.full((16, 16, 3), np.nan)


def clean():
    return np.zeros((16, 16, 3))


class TestAdmission:
    def test_admit_builds_structured_record(self):
        ledger = Quarantine()
        record = ledger.admit(
            "url_crawl",
            "https://imgur.com/x",
            NonFinitePixelError("NaN pixels"),
            {"link_kind": "preview"},
        )
        assert isinstance(record, QuarantineRecord)
        assert record.stage == "url_crawl"
        assert record.ref == "https://imgur.com/x"
        assert record.error_type == "NonFinitePixelError"
        assert "NaN" in record.message
        assert record.context == {"link_kind": "preview"}
        assert ledger.records == [record]

    def test_record_summary_and_dict(self):
        record = QuarantineRecord(
            stage="nsfv", ref="abc123", error_type="WrongShapeError",
            message="bad", context={"group": "previews"},
        )
        summary = record.summary()
        assert "nsfv" in summary and "abc123" in summary
        assert "group=previews" in summary
        round_trip = record.to_dict()
        assert round_trip["error_type"] == "WrongShapeError"
        assert round_trip["context"] == {"group": "previews"}


class TestGuard:
    def test_guard_captures_exceptions(self):
        ledger = Quarantine()
        with ledger.guard("provenance", "digest-1"):
            raise RuntimeError("query blew up")
        assert ledger.count("provenance") == 1
        assert ledger.records[0].error_type == "RuntimeError"

    def test_guard_passes_clean_records(self):
        ledger = Quarantine()
        with ledger.guard("provenance", "digest-1"):
            pass
        assert len(ledger) == 0

    def test_guard_never_swallows_operator_aborts(self):
        ledger = Quarantine()
        with pytest.raises(KeyboardInterrupt):
            with ledger.guard("provenance", "digest-1"):
                raise KeyboardInterrupt()
        assert len(ledger) == 0


class TestFilterRasters:
    def test_order_preserving_excision(self):
        ledger = Quarantine()
        items = [("a", clean()), ("b", poison()), ("c", clean())]
        survivors = ledger.filter_rasters(
            "nsfv", items, ref=lambda i: i[0], raster=lambda i: i[1]
        )
        assert [name for name, _ in survivors] == ["a", "c"]
        assert ledger.refs("nsfv") == {"b"}
        assert ledger.records[0].error_type == "NonFinitePixelError"

    def test_raster_access_failure_is_quarantined_too(self):
        def exploding(item):
            if item == "bad":
                raise OSError("disk fell over")
            return clean()

        ledger = Quarantine()
        survivors = ledger.filter_rasters(
            "abuse_filter", ["ok", "bad"], ref=str, raster=exploding
        )
        assert survivors == ["ok"]
        assert ledger.records[0].error_type == "OSError"

    def test_context_callable(self):
        ledger = Quarantine()
        ledger.filter_rasters(
            "provenance",
            ["x"],
            ref=str,
            raster=lambda i: poison(),
            context=lambda i: {"group": "packs"},
        )
        assert ledger.records[0].context == {"group": "packs"}


class TestAccounting:
    def ledger(self):
        ledger = Quarantine()
        ledger.admit("url_crawl", "u1", ValueError("a"))
        ledger.admit("url_crawl", "u2", TypeError("b"))
        ledger.admit("nsfv", "d1", ValueError("c"))
        return ledger

    def test_counts(self):
        ledger = self.ledger()
        assert len(ledger) == 3
        assert ledger.n_quarantined == 3
        assert ledger.count() == 3
        assert ledger.count("url_crawl") == 2
        assert ledger.count("missing") == 0

    def test_by_stage_and_error(self):
        ledger = self.ledger()
        assert ledger.by_stage() == {"url_crawl": 2, "nsfv": 1}
        assert ledger.by_error() == {"ValueError": 2, "TypeError": 1}

    def test_refs(self):
        ledger = self.ledger()
        assert ledger.refs() == {"u1", "u2", "d1"}
        assert ledger.refs("nsfv") == {"d1"}

    def test_sample_is_stable_prefix(self):
        ledger = self.ledger()
        assert [r.ref for r in ledger.sample(2)] == ["u1", "u2"]
        assert ledger.sample(0) == []

    def test_merge(self):
        a, b = self.ledger(), self.ledger()
        a.merge(b)
        assert len(a) == 6
        assert a.by_stage() == {"url_crawl": 4, "nsfv": 2}


class TestSummaryLines:
    def test_empty(self):
        assert Quarantine().summary_lines() == ["no quarantined records"]

    def test_populated(self):
        ledger = Quarantine()
        ledger.admit("url_crawl", "u1", ValueError("boom"))
        lines = ledger.summary_lines()
        assert lines[0] == "1 records quarantined"
        assert any("by stage: url_crawl=1" in line for line in lines)
        assert any("by error: ValueError=1" in line for line in lines)
        assert any("e.g. url_crawl: u1" in line for line in lines)
