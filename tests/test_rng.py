"""Tests for the seeded RNG plumbing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._rng import SeedSequenceTree, derive_seed, rng_from


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_root_seed_matters(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_path_matters(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_path_depth_matters(self):
        assert derive_seed(7, "a") != derive_seed(7, "a", "a")

    def test_path_order_matters(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) and ("a", "b") must differ — the separator byte matters.
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")

    def test_returns_unsigned_64bit(self):
        value = derive_seed(123, "x")
        assert 0 <= value < 2**64

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_always_valid_seed(self, root, label):
        value = derive_seed(root, label)
        np.random.default_rng(value)  # must not raise


class TestRngFrom:
    def test_same_stream_same_values(self):
        a = rng_from(5, "stream")
        b = rng_from(5, "stream")
        assert a.random() == b.random()

    def test_different_streams_diverge(self):
        a = rng_from(5, "one")
        b = rng_from(5, "two")
        draws_a = [a.random() for _ in range(4)]
        draws_b = [b.random() for _ in range(4)]
        assert draws_a != draws_b


class TestSeedSequenceTree:
    def test_child_equivalent_to_path(self):
        tree = SeedSequenceTree(42)
        direct = tree.rng("forums", "hackforums").random()
        via_child = tree.child("forums").rng("hackforums").random()
        assert direct == via_child

    def test_seed_matches_rng_derivation(self):
        tree = SeedSequenceTree(42)
        assert tree.seed("x") == derive_seed(42, "x")

    def test_prefix_isolation(self):
        tree_a = SeedSequenceTree(42, "a")
        tree_b = SeedSequenceTree(42, "b")
        assert tree_a.rng("x").random() != tree_b.rng("x").random()
