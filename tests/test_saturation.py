"""Tests for the pack-saturation analysis."""

from datetime import datetime, timedelta

import pytest

from repro.core.saturation import analyze_saturation, reuse_distribution
from repro.media import ImageKind, Pack, SyntheticImage, sample_latent
from repro.web import LinkRecord, Url
from repro.web.crawler import CrawlResult, CrawlStats, CrawledImage, content_digest

T0 = datetime(2015, 1, 1)


def crawled(image, pack_id, when=T0):
    return CrawledImage(
        image=image,
        digest=content_digest(image),
        link=LinkRecord(url=Url("mediafire.com", f"/{pack_id}"), posted_at=when),
        pack_id=pack_id,
    )


@pytest.fixture()
def reuse_setting(rng):
    """Three packs: pack 2 reuses half of pack 1; pack 3 is fresh."""
    shared = [SyntheticImage(i, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1))
              for i in range(4)]
    fresh2 = [SyntheticImage(10 + i, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1))
              for i in range(2)]
    fresh3 = [SyntheticImage(20 + i, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=2))
              for i in range(3)]
    images = (
        [crawled(i, 1, T0) for i in shared]
        + [crawled(i, 2, T0 + timedelta(days=30)) for i in shared[:2] + fresh2]
        + [crawled(i, 3, T0 + timedelta(days=60)) for i in fresh3]
    )
    packs = [
        Pack(pack_id=1, model_id=1, images=shared),
        Pack(pack_id=2, model_id=1, images=shared[:2] + fresh2),
        Pack(pack_id=3, model_id=2, images=fresh3),
    ]
    return CrawlResult(preview_images=[], pack_images=images, packs=packs,
                       stats=CrawlStats())


class TestReuseDistribution:
    def test_counts_distinct_packs(self, reuse_setting):
        distribution = reuse_distribution(reuse_setting.pack_images)
        counts = sorted(distribution.values())
        # 2 shared images in 2 packs; the rest in 1 pack each.
        assert counts == [1, 1, 1, 1, 1, 1, 1, 2, 2]

    def test_same_pack_repeat_not_double_counted(self, rng):
        image = SyntheticImage(1, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1))
        images = [crawled(image, 1), crawled(image, 1)]
        assert reuse_distribution(images) == {content_digest(image): 1}


class TestSaturation:
    def test_per_pack_chronology(self, reuse_setting):
        report = analyze_saturation(reuse_setting)
        by_id = {p.pack_id: p for p in report.per_pack}
        assert by_id[1].n_previously_seen == 0
        assert by_id[2].n_previously_seen == 2
        assert by_id[2].saturation_index == pytest.approx(0.5)
        assert by_id[3].n_previously_seen == 0

    def test_fresh_and_saturated_lists(self, reuse_setting):
        report = analyze_saturation(reuse_setting)
        assert set(report.fully_fresh_packs()) == {1, 3}
        assert report.saturated_packs(threshold=0.5) == [2]

    def test_images_in_at_least(self, reuse_setting):
        report = analyze_saturation(reuse_setting)
        assert report.images_in_at_least(2) == 2
        assert report.images_in_at_least(1) == report.n_unique_images
        assert report.images_in_at_least(5) == 0

    def test_reuse_histogram_totals(self, reuse_setting):
        report = analyze_saturation(reuse_setting)
        histogram = report.reuse_histogram()
        assert sum(histogram.values()) == report.n_unique_images

    def test_empty_crawl(self):
        report = analyze_saturation(
            CrawlResult(preview_images=[], pack_images=[], packs=[], stats=CrawlStats())
        )
        assert report.n_unique_images == 0
        assert report.mean_saturation() == 0.0

    def test_world_saturation(self, report):
        """§4.2: free packs are saturated — reuse must be present."""
        from repro.core.saturation import analyze_saturation as analyze

        saturation = analyze(report.crawl)
        if len(report.crawl.packs) < 5:
            pytest.skip("too few packs at this scale")
        assert saturation.images_in_at_least(2) > 0
        assert 0.0 < saturation.mean_saturation() < 1.0
        assert saturation.n_unique_images == report.crawl.n_unique_files - len(
            {c.digest for c in report.crawl.preview_images}
            - {c.digest for c in report.crawl.pack_images}
        )
