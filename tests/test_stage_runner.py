"""Tests for stage-level error boundaries and pipeline graceful degradation."""

import pytest

from repro import run_pipeline
from repro.core.stage_runner import StageFailure, StageOutcome, StageRunner


def boom():
    raise RuntimeError("injected stage failure")


class TestStageRunner:
    def test_ok_path_records_outcome(self):
        runner = StageRunner(strict=True)
        value, ok = runner.run("alpha", lambda: 42)
        assert (value, ok) == (42, True)
        assert runner.outcomes[0].status == "ok"
        assert not runner.degraded

    def test_strict_reraises_but_records(self):
        runner = StageRunner(strict=True)
        with pytest.raises(ZeroDivisionError):
            runner.run("alpha", lambda: 1 // 0)
        assert runner.outcomes[0].status == "failed"
        assert runner.failures[0].error_type == "ZeroDivisionError"

    def test_lenient_converts_to_structured_failure(self):
        runner = StageRunner(strict=False)
        value, ok = runner.run(
            "alpha", boom, context={"n_links": 7, "n_images": 3}
        )
        assert value is None and not ok
        failure = runner.failures[0]
        assert failure.stage == "alpha"
        assert failure.error_type == "RuntimeError"
        assert "injected stage failure" in failure.message
        assert "RuntimeError" in failure.traceback
        assert failure.elapsed >= 0.0
        assert failure.context == {"n_links": 7, "n_images": 3}
        assert "n_links=7" in failure.summary()

    def test_dependents_are_skipped(self):
        runner = StageRunner(strict=False)
        runner.run("alpha", boom)
        value, ok = runner.run("beta", lambda: 1, requires=("alpha",))
        assert value is None and not ok
        outcome = runner.outcomes[1]
        assert outcome.status == "skipped"
        assert outcome.skipped_due_to == "alpha"
        # transitive skip
        runner.run("gamma", lambda: 1, requires=("beta",))
        assert runner.outcomes[2].status == "skipped"
        # independent stage still runs
        value, ok = runner.run("delta", lambda: "fine")
        assert (value, ok) == ("fine", True)
        assert runner.degraded

    def test_hooks_force_failures(self):
        runner = StageRunner(strict=False, hooks={"alpha": boom})
        _, ok = runner.run("alpha", lambda: 1)
        assert not ok
        _, ok = runner.run("beta", lambda: 2)
        assert ok

    def test_summary_lines(self):
        runner = StageRunner(strict=False)
        runner.run("alpha", lambda: 1)
        assert runner.summary_lines() == ["all stages completed"]
        runner.run("beta", boom)
        runner.run("gamma", lambda: 1, requires=("beta",))
        lines = runner.summary_lines()
        assert any(line.startswith("FAILED  beta") for line in lines)
        assert any("skipped gamma" in line for line in lines)

    def test_root_cause_tracked_through_skip_chains(self):
        """Regression: a transitively skipped stage must name the stage
        that actually failed, not just its direct dependency."""
        runner = StageRunner(strict=False)
        runner.run("alpha", boom)
        runner.run("beta", lambda: 1, requires=("alpha",))
        runner.run("gamma", lambda: 1, requires=("beta",))
        beta, gamma = runner.outcomes[1], runner.outcomes[2]
        assert (beta.skipped_due_to, beta.root_cause) == ("alpha", "alpha")
        assert (gamma.skipped_due_to, gamma.root_cause) == ("beta", "alpha")
        lines = runner.summary_lines()
        # direct skip: no redundant root-cause suffix
        assert "skipped beta (requires alpha)" in lines
        # transitive skip: the root cause is surfaced
        assert "skipped gamma (requires beta; root cause alpha)" in lines

    def test_non_exception_errors_reraise_even_in_lenient_mode(self):
        """Lenient mode degrades on stage crashes; it must not swallow
        operator aborts — but it still records them for the post-mortem."""

        def interrupt():
            raise KeyboardInterrupt()

        runner = StageRunner(strict=False, hooks={"alpha": interrupt})
        with pytest.raises(KeyboardInterrupt):
            runner.run("alpha", lambda: 1)
        assert runner.outcomes[0].status == "failed"
        assert runner.failures[0].error_type == "KeyboardInterrupt"
        # the stage is still marked bad, so dependents would skip
        assert runner.unavailable("alpha")

    def test_system_exit_reraises_in_lenient_mode(self):
        runner = StageRunner(strict=False)

        def bail():
            raise SystemExit(3)

        with pytest.raises(SystemExit):
            runner.run("alpha", bail)
        assert runner.failures[0].error_type == "SystemExit"


class TestPipelineReportOutcomes:
    """PipelineReport's degradation accessors over mixed outcomes."""

    def make_report(self):
        from repro.core.pipeline import PipelineReport

        failure = StageFailure(
            stage="abuse_filter",
            error_type="RuntimeError",
            message="boom",
            traceback="...",
            elapsed=0.1,
            context={"n_images": 12},
        )
        outcomes = [
            StageOutcome(stage="top_extraction", status="ok", elapsed=1.0),
            StageOutcome(stage="url_crawl", status="ok", elapsed=2.0),
            StageOutcome(
                stage="abuse_filter", status="failed", elapsed=0.1, failure=failure
            ),
            StageOutcome(
                stage="nsfv", status="skipped",
                skipped_due_to="abuse_filter", root_cause="abuse_filter",
            ),
            StageOutcome(
                stage="provenance", status="skipped",
                skipped_due_to="nsfv", root_cause="abuse_filter",
            ),
        ]
        return PipelineReport(
            selection=[], forum_summaries=[],
            stage_outcomes=outcomes, stage_failures=[failure],
        )

    def test_degraded_with_mixed_outcomes(self):
        assert self.make_report().degraded

    def test_not_degraded_when_all_ok(self):
        from repro.core.pipeline import PipelineReport

        report = PipelineReport(
            selection=[], forum_summaries=[],
            stage_outcomes=[StageOutcome(stage="a", status="ok")],
        )
        assert not report.degraded

    def test_stage_failure_lookup(self):
        report = self.make_report()
        failure = report.stage_failure("abuse_filter")
        assert failure is not None and failure.error_type == "RuntimeError"
        # skipped stages have no failure record of their own
        assert report.stage_failure("nsfv") is None
        assert report.stage_failure("does_not_exist") is None

    def test_skipped_outcomes_carry_root_cause(self):
        report = self.make_report()
        by_stage = {o.stage: o for o in report.stage_outcomes}
        assert by_stage["provenance"].root_cause == "abuse_filter"
        assert by_stage["provenance"].skipped_due_to == "nsfv"


@pytest.mark.slow
class TestPipelineDegradation:
    """Acceptance: strict=False returns a partial report with a populated
    StageFailure when a stage is forced to raise."""

    def test_forced_abuse_failure_degrades_gracefully(self, world):
        report = run_pipeline(
            world, strict=False, stage_hooks={"abuse_filter": boom}
        )
        assert report.degraded
        # failed section marked unavailable
        assert report.abuse is None
        # dependents skipped, also unavailable
        assert report.preview_verdicts is None
        assert report.provenance is None
        assert report.nsfv_previews == []
        # upstream and independent sections still present
        assert report.crawl is not None
        assert report.tops is not None
        assert report.earnings is not None
        assert report.actor_analyzer is not None
        # the structured failure record is populated
        failure = report.stage_failure("abuse_filter")
        assert isinstance(failure, StageFailure)
        assert failure.error_type == "RuntimeError"
        assert "injected stage failure" in failure.message
        assert failure.context.get("n_images", 0) > 0
        statuses = {o.stage: o.status for o in report.stage_outcomes}
        assert statuses["abuse_filter"] == "failed"
        assert statuses["nsfv"] == "skipped"
        assert statuses["provenance"] == "skipped"
        assert statuses["earnings"] == "ok"

    def test_strict_mode_propagates(self, world):
        with pytest.raises(RuntimeError, match="injected stage failure"):
            run_pipeline(world, strict=True, stage_hooks={"provenance": boom})

    def test_default_run_records_all_ok(self, report):
        assert not report.degraded
        assert report.stage_failures == []
        assert {o.status for o in report.stage_outcomes} == {"ok"}
        assert [o.stage for o in report.stage_outcomes] == [
            "top_extraction",
            "url_crawl",
            "abuse_filter",
            "nsfv",
            "provenance",
            "earnings",
            "actors",
        ]
