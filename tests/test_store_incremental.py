"""The tentpole invariant: incremental runs are bit-identical to cold.

For any world configuration, running the store-backed pipeline over
epochs ``1..N`` one delta at a time must produce, at epoch ``N``,
exactly what a single cold run over the whole union produces:

* the same crawl digest (:meth:`CrawlResult.digest`),
* the same quarantine ledger, record for record,
* the same measurement view
  (:meth:`~repro.obs.RunTelemetry.measurement_view` — the deterministic
  snapshot minus cache/store work metrics, which legitimately differ
  between warm and cold runs).

The matrix deliberately crosses the store path with the failure
machinery of earlier PRs: fault profiles (transport chaos), payload
profiles (corrupt rasters → quarantine), drift profiles (adversarial
evasion), and crawl worker counts (sharded executor).
"""

import pytest

from repro.store import (
    PersistSession,
    RunStore,
    StoreConfigError,
    run_incremental,
)

#: Small-but-inhabited world: every funnel stage sees traffic, including
#: quarantine (hostile payloads) and the underage/hashlist branches.
WORLD_KW = dict(
    seed=3,
    scale=0.006,
    with_other_activity=False,
    underage_rate=0.30,
    hashlist_rate=0.5,
    epoch_total=3,
)


def ledger(result):
    return [r.to_dict() for r in result.report.quarantine.records]


def run_epochs(tmp_path, name, epochs, workers=None, **overrides):
    cfg = {**WORLD_KW, **overrides}
    path = tmp_path / f"{name}.sqlite"
    result = None
    for epoch in epochs:
        kwargs = dict(cfg)
        if workers is not None and epoch == epochs[-1]:
            kwargs["workers"] = workers
        result = run_incremental(path, epoch=epoch, **kwargs)
    return result


class TestIncrementalEqualsCold:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"payload_profile": "hostile"},
            {"fault_profile": "flaky"},
            {"drift_profile": "aggressive", "drift_epoch": 1},
            {"fault_profile": "hostile", "payload_profile": "hostile"},
        ],
        ids=["clean", "payload-hostile", "fault-flaky", "drift", "fault+payload"],
    )
    @pytest.mark.parametrize("workers", [None, 4], ids=["serial", "workers4"])
    def test_epochs_1_to_3_equal_cold_union(self, tmp_path, overrides, workers):
        cold = run_epochs(tmp_path, "cold", [3], **overrides)
        inc = run_epochs(tmp_path, "inc", [1, 2, 3], workers=workers, **overrides)
        assert inc.crawl_digest == cold.crawl_digest
        assert ledger(inc) == ledger(cold)
        assert inc.measurement == cold.measurement

    def test_delta_appends_are_monotone(self, tmp_path):
        path = tmp_path / "mono.sqlite"
        totals = []
        for epoch in (1, 2, 3):
            result = run_incremental(path, epoch=epoch, **WORLD_KW)
            totals.append(sum(result.row_counts.values()))
            assert result.rows_added > 0
        assert totals == sorted(totals)
        # the epoch-3 store holds exactly the cold union's row count
        cold = run_incremental(tmp_path / "cold.sqlite", epoch=3, **WORLD_KW)
        assert totals[-1] == sum(cold.row_counts.values())

    def test_rerun_at_same_epoch_adds_nothing_and_matches(self, tmp_path):
        path = tmp_path / "rerun.sqlite"
        first = run_incremental(path, epoch=3, **WORLD_KW)
        again = run_incremental(path, epoch=3, **WORLD_KW)
        assert again.rows_added == 0
        assert again.crawl_digest == first.crawl_digest
        assert again.measurement == first.measurement

    def test_warm_memos_are_actually_consulted(self, tmp_path):
        path = tmp_path / "warm.sqlite"
        run_incremental(path, epoch=2, **WORLD_KW)
        result = run_incremental(path, epoch=3, **WORLD_KW)
        hits = [
            metric["value"]
            for metric in result.report.telemetry.deterministic_snapshot()["metrics"]
            if metric["name"] == "vision_cache.hits"
        ]
        assert hits and hits[0] > 0


class TestStoreRefusals:
    def test_epoch_rewind_refused(self, tmp_path):
        path = tmp_path / "rewind.sqlite"
        run_incremental(path, epoch=2, **WORLD_KW)
        with pytest.raises(StoreConfigError, match="rewind"):
            run_incremental(path, epoch=1, **WORLD_KW)

    def test_foreign_config_refused(self, tmp_path):
        path = tmp_path / "bound.sqlite"
        run_incremental(path, epoch=1, **WORLD_KW)
        other = dict(WORLD_KW, seed=WORLD_KW["seed"] + 1)
        with pytest.raises(StoreConfigError, match="different world"):
            run_incremental(path, epoch=2, **other)

    def test_config_object_and_overrides_are_exclusive(self, tmp_path):
        from repro.synth.world import WorldConfig

        with pytest.raises(TypeError):
            run_incremental(
                tmp_path / "x.sqlite",
                config=WorldConfig(**WORLD_KW),
                seed=9,
            )


class TestDriftThroughStore:
    def test_drift_epoch_zero_is_strict_noop(self, tmp_path):
        """A drift profile armed at epoch 0 must not perturb anything.

        The store path re-validates the persisted profile and replays the
        world through its cursors; epoch 0 (and profile ``none``) must
        come out bit-identical to an undrifted run of the same world.
        """
        plain = run_epochs(tmp_path, "plain", [1, 2, 3])
        armed = run_epochs(
            tmp_path, "armed", [1, 2, 3],
            drift_profile="aggressive", drift_epoch=0,
        )
        assert armed.crawl_digest == plain.crawl_digest
        assert ledger(armed) == ledger(plain)
        assert armed.measurement == plain.measurement

    def test_store_loaded_world_revalidates_drift_profile(self, tmp_path):
        """Bad profile names die in WorldConfig before touching the store."""
        with pytest.raises(ValueError, match="profile"):
            run_incremental(
                tmp_path / "bad.sqlite", epoch=1,
                **dict(WORLD_KW, drift_profile="definitely-not-a-profile"),
            )


class TestPersistSession:
    def test_unchanged_memos_are_not_rewritten(self, tmp_path):
        path = tmp_path / "skip.sqlite"
        run_incremental(path, epoch=3, **WORLD_KW)
        with RunStore(path) as store:
            session = PersistSession.load(store)
            before = store._execute(
                "SELECT COUNT(*) FROM vision_cache"
            ).fetchone()[0]
            session.save(store)  # nothing grew: every write skipped
            after = store._execute(
                "SELECT COUNT(*) FROM vision_cache"
            ).fetchone()[0]
        assert before == after

    def test_grown_memo_is_rewritten(self, tmp_path):
        path = tmp_path / "grow.sqlite"
        run_incremental(path, epoch=3, **WORLD_KW)
        with RunStore(path) as store:
            session = PersistSession.load(store)
            session.validation_memo.record_ok("brand-new-digest")
            session.save(store)
            row = store._execute(
                "SELECT ok FROM validation_memo WHERE digest='brand-new-digest'"
            ).fetchone()
        assert row is not None and row[0] == 1
