"""Property-based round-trip tests for the JSONL store.

Hypothesis generates arbitrary small-but-valid datasets (including
unicode content, odd usernames, deep quote chains) and asserts the
save/load round trip is lossless.
"""

from datetime import datetime, timedelta

import pytest
from hypothesis import given, settings, strategies as st

from repro.forum import (
    Actor,
    Board,
    Forum,
    ForumDataset,
    Post,
    Thread,
    load_dataset,
    save_dataset,
)

BASE = datetime(2012, 1, 1)

name_st = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                           whitelist_characters=" _-"),
    min_size=1, max_size=24,
).filter(str.strip)

content_st = st.text(max_size=120)

dates_st = st.integers(min_value=0, max_value=3000).map(
    lambda d: BASE + timedelta(days=d)
)


@st.composite
def dataset_st(draw):
    ds = ForumDataset()
    n_forums = draw(st.integers(1, 2))
    actor_ids = []
    thread_ids = []
    next_id = 1
    for _ in range(n_forums):
        forum_id = next_id
        next_id += 1
        ds.add_forum(Forum(forum_id, draw(name_st),
                           has_ewhoring_board=draw(st.booleans())))
        board_id = next_id
        next_id += 1
        ds.add_board(Board(board_id, forum_id, draw(name_st),
                           category=draw(st.one_of(st.none(), name_st))))
        for _ in range(draw(st.integers(1, 3))):
            actor_id = next_id
            next_id += 1
            ds.add_actor(Actor(actor_id, forum_id, draw(name_st), draw(dates_st)))
            actor_ids.append(actor_id)
        for _ in range(draw(st.integers(0, 3))):
            thread_id = next_id
            next_id += 1
            author = draw(st.sampled_from(actor_ids))
            ds.add_thread(Thread(thread_id, board_id, forum_id, author,
                                 draw(content_st) or "h", draw(dates_st)))
            thread_ids.append(thread_id)
            previous_post = None
            for position in range(draw(st.integers(1, 4))):
                post_id = next_id
                next_id += 1
                quote = previous_post if draw(st.booleans()) else None
                ds.add_post(Post(post_id, thread_id,
                                 draw(st.sampled_from(actor_ids)),
                                 draw(dates_st), draw(content_st), position,
                                 quoted_post_id=quote))
                previous_post = post_id
    return ds


class TestRoundTripProperty:
    @given(dataset_st())
    @settings(max_examples=25, deadline=None)
    def test_lossless(self, tmp_path_factory, ds):
        path = tmp_path_factory.mktemp("store") / "ds.jsonl"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert loaded.n_forums == ds.n_forums
        assert loaded.n_boards == ds.n_boards
        assert loaded.n_actors == ds.n_actors
        assert loaded.n_threads == ds.n_threads
        assert loaded.n_posts == ds.n_posts
        for thread in ds.threads():
            other = loaded.thread(thread.thread_id)
            assert other == thread
            original_posts = ds.posts_in_thread(thread.thread_id)
            loaded_posts = loaded.posts_in_thread(thread.thread_id)
            assert original_posts == loaded_posts
        for actor in ds.actors():
            assert loaded.actor(actor.actor_id) == actor
