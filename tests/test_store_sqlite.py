"""RunStore unit tests: schema, typed failures, memo round trips.

The store's contract (DESIGN.md §12): append-only, bound to exactly one
world configuration, watermarked per stage, and *typed* in failure —
anything wrong with the file or its contents raises a
:class:`~repro.store.errors.StoreError` subclass, never a bare
``sqlite3``/``json`` exception, and never yields a half-loaded object.
"""

import sqlite3
from datetime import datetime, timedelta

import pytest

from repro.forum import Actor, Board, Forum, ForumDataset, Post, Thread
from repro.media.validate import ValidationMemo
from repro.store import (
    RunStore,
    StoreConfigError,
    StoreCorruptionError,
    StoreError,
    config_fingerprint,
)
from repro.synth.world import WorldConfig
from repro.vision.cache import VisionCache
from repro.web.crawler import IngestMemo

T0 = datetime(2014, 6, 15, 12, 30)


def small_dataset(n_posts: int = 3) -> ForumDataset:
    ds = ForumDataset()
    ds.add_forum(Forum(1, "F", has_ewhoring_board=True))
    ds.add_board(Board(2, 1, "eWhoring", category="Market", is_ewhoring_board=True))
    ds.add_actor(Actor(3, 1, "carol", T0))
    ds.add_thread(Thread(4, 2, 1, 3, "pack thread", T0))
    for i in range(n_posts):
        ds.add_post(Post(5 + i, 4, 3, T0 + timedelta(minutes=i), f"post {i}", i))
    return ds


@pytest.fixture()
def store(tmp_path):
    with RunStore(tmp_path / "run.sqlite") as s:
        yield s


class TestOpenAndIntegrity:
    def test_garbage_file_raises_typed(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"this is not a sqlite database at all" * 64)
        with pytest.raises(StoreCorruptionError):
            RunStore(path)

    def test_truncated_store_raises_typed(self, tmp_path):
        path = tmp_path / "trunc.sqlite"
        with RunStore(path) as s:
            s.append_dataset(small_dataset(50))
            s.checkpoint_wal()
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        with pytest.raises(StoreError):
            RunStore(path).read_dataset()

    def test_schema_version_mismatch_raises_typed(self, tmp_path):
        path = tmp_path / "future.sqlite"
        RunStore(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE meta SET value='999' WHERE key='schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreCorruptionError, match="schema version"):
            RunStore(path)

    def test_reopen_is_clean(self, tmp_path):
        path = tmp_path / "ok.sqlite"
        with RunStore(path) as s:
            s.append_dataset(small_dataset())
        with RunStore(path) as s:
            assert s.row_counts()["posts"] == 3


class TestBindConfig:
    def test_first_bind_persists_fingerprint(self, store):
        cfg = WorldConfig(seed=7, scale=0.01)
        store.bind_config(cfg)
        store.bind_config(cfg)  # idempotent

    def test_epoch_and_workers_are_not_identity(self, store):
        from dataclasses import replace

        cfg = WorldConfig(seed=7, scale=0.01, epoch_total=3)
        store.bind_config(cfg)
        store.bind_config(replace(cfg, epoch=2, crawl_workers=4))
        assert config_fingerprint(cfg) == config_fingerprint(
            replace(cfg, epoch=1, crawl_workers=8)
        )

    def test_different_world_refused(self, store):
        store.bind_config(WorldConfig(seed=7, scale=0.01))
        with pytest.raises(StoreConfigError, match="different world"):
            store.bind_config(WorldConfig(seed=8, scale=0.01))

    def test_epoch_total_is_identity(self, store):
        store.bind_config(WorldConfig(seed=7, scale=0.01, epoch_total=3))
        with pytest.raises(StoreConfigError):
            store.bind_config(WorldConfig(seed=7, scale=0.01, epoch_total=4))

    def test_tampered_persisted_config_fails_revalidation(self, tmp_path):
        path = tmp_path / "tampered.sqlite"
        with RunStore(path) as s:
            s.bind_config(WorldConfig(seed=7, scale=0.01))
        conn = sqlite3.connect(str(path))
        row = conn.execute(
            "SELECT value FROM meta WHERE key='config_fingerprint'"
        ).fetchone()
        tampered = row[0].replace('"seed": 7', '"payload_profile": "bogus", "seed": 7')
        conn.execute(
            "UPDATE meta SET value=? WHERE key='config_fingerprint'", (tampered,)
        )
        conn.commit()
        conn.close()
        with RunStore(path) as s:
            with pytest.raises(StoreCorruptionError, match="re-validate"):
                s.bind_config(WorldConfig(seed=7, scale=0.01))


class TestWatermarks:
    def test_absent_watermark_is_none(self, store):
        assert store.watermark("dataset") is None

    def test_round_trip(self, store):
        store.set_watermark("dataset", 2, "2014-06-15T14:30:00", None)
        wm = store.watermark("dataset")
        assert wm == {"epoch": 2, "cutoff": "2014-06-15T14:30:00", "run_id": None}

    def test_advance_allowed_rewind_refused(self, store):
        store.set_watermark("dataset", 2)
        store.set_watermark("dataset", 3)
        with pytest.raises(StoreConfigError, match="rewind"):
            store.set_watermark("dataset", 1)

    def test_stages_are_independent(self, store):
        store.set_watermark("dataset", 5)
        store.set_watermark("pipeline", 1)
        assert store.watermark("pipeline")["epoch"] == 1


class TestDatasetRoundTrip:
    def test_append_then_read_identical(self, store):
        ds = small_dataset()
        store.append_dataset(ds)
        loaded = store.read_dataset()
        assert [p.content for p in loaded.posts()] == [p.content for p in ds.posts()]
        assert loaded.post(6).created_at == ds.post(6).created_at

    def test_reappend_is_idempotent(self, store):
        ds = small_dataset()
        assert store.append_dataset(ds) == 7  # 4 structure records + 3 posts
        assert store.append_dataset(ds) == 0
        assert store.row_counts()["posts"] == 3

    def test_since_filter_appends_only_the_suffix(self, store):
        ds = small_dataset(2)
        store.append_dataset(ds)
        cutoff = max(p.created_at for p in ds.posts()).isoformat()
        grown = small_dataset(4)  # same prefix, two newer posts
        added = store.append_dataset(grown, since=cutoff)
        assert added == 2
        assert store.row_counts()["posts"] == 4
        assert store.read_dataset().n_posts == 4

    def test_corrupted_row_never_half_loads(self, tmp_path):
        path = tmp_path / "danglers.sqlite"
        with RunStore(path) as s:
            s.append_dataset(small_dataset())
        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE posts SET thread_id=999 WHERE post_id=5")
        conn.commit()
        conn.close()
        with RunStore(path) as s:
            with pytest.raises(StoreCorruptionError, match="integrity"):
                s.read_dataset()


class TestMemoPersistence:
    def test_vision_cache_round_trip(self, store):
        cache = VisionCache()
        cache.put("d1", "hash", 12345)
        cache.put("d1", "nsfw", {"score": 0.25})
        cache.put("d2", "hash", 777)
        store.save_vision_cache(cache)
        warm = VisionCache()
        assert store.load_vision_cache(warm) == 2
        assert warm.get("d1", "nsfw") == {"score": 0.25}
        assert warm.get("d2", "hash") == 777

    def test_validation_memo_round_trip(self, store):
        memo = ValidationMemo()
        memo.record_ok("clean")
        memo.preload([("poison", ("TruncatedRasterError", "raster truncated"))])
        store.save_validation_memo(memo)
        warm = ValidationMemo()
        store.load_validation_memo(warm)
        assert warm.lookup("clean") == (True, None)
        assert warm.lookup("poison") == (
            True,
            ("TruncatedRasterError", "raster truncated"),
        )

    def test_ingest_memo_round_trip_with_null_keys(self, store):
        memo = IngestMemo()
        memo.record_ok(("http://x/a", 1, 0), "digest-a")
        memo.record_ok(("http://x/b", None, None), "digest-b")
        memo.record_error(("http://x/c", 2, 1), ValueError("boom"))
        store.save_ingest_memo("url_crawl", memo)
        warm = IngestMemo()
        store.load_ingest_memo("url_crawl", warm)
        assert warm.lookup(("http://x/b", None, None)) == ("ok", "digest-b")
        err = warm.lookup(("http://x/c", 2, 1))
        assert err[0] == "err" and err[1] == "ValueError"

    def test_ingest_memo_stages_are_namespaced(self, store):
        memo = IngestMemo()
        memo.record_ok(("http://x/a", None, None), "d")
        store.save_ingest_memo("url_crawl", memo)
        other = IngestMemo()
        assert store.load_ingest_memo("earnings", other) == 0

    def test_ok_row_without_digest_is_corruption(self, tmp_path):
        path = tmp_path / "memo.sqlite"
        with RunStore(path) as s:
            memo = IngestMemo()
            memo.record_ok(("http://x/a", None, None), "d")
            s.save_ingest_memo("url_crawl", memo)
        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE ingest_memo SET digest=NULL")
        conn.commit()
        conn.close()
        with RunStore(path) as s:
            with pytest.raises(StoreCorruptionError, match="no digest"):
                s.load_ingest_memo("url_crawl", IngestMemo())

    def test_world_hashes_round_trip(self, store):
        hashes = {1: 2**63 + 5, 2: 42}  # exceeds sqlite signed-int range
        store.save_world_hashes(hashes)
        assert store.load_world_hashes() == hashes


class TestBlobsAndRuns:
    def test_blob_round_trip(self, store):
        payload = {"metrics": [1, 2, 3], "nested": {"ok": True}}
        store.save_blob("measurement", "epoch_1", payload)
        assert store.load_blob("measurement", "epoch_1") == payload
        assert store.load_blob("measurement", "missing") is None

    def test_unserialisable_blob_is_typed(self, store):
        with pytest.raises(StoreError):
            store.save_blob("measurement", "bad", {"x": object()})

    def test_record_run_and_quarantine_ledger(self, store):
        records = [
            {"stage": "url_crawl", "ref": "http://x/a",
             "error_type": "TruncatedRasterError", "message": "m", "context": "c"}
        ]
        run_id = store.record_run(2, "deadbeef", records, {"links": 10})
        runs = store.runs()
        assert runs[-1]["epoch"] == 2
        assert runs[-1]["crawl_digest"] == "deadbeef"
        assert runs[-1]["n_quarantined"] == 1
        ledger = store.quarantine_records(run_id)
        assert ledger == records
