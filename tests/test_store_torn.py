"""Torn-file injection: damaged artifacts fail *typed*, never half-load.

Satellite of the crash-consistency layer (DESIGN.md §13): the chaos
harness proves a SIGKILL can't corrupt anything, so these tests supply
the corruption by hand — truncation and garbage bytes at
deterministically hash-chosen offsets — and assert three things:

* every damaged artifact raises the typed taxonomy
  (:class:`StoreCorruptionError` / :class:`CheckpointError`), never a
  bare ``sqlite3``/``json`` exception or a half-loaded object;
* ``repro store verify`` maps the taxonomy to its typed exit codes;
* ``repro store repair`` salvages exactly the committed prefix — and
  **refuses** when there is no committed prefix left to save.

WAL-sidecar damage is special: SQLite's checksum chain means a torn or
garbage WAL is indistinguishable from a crash before COMMIT, so the
store must *survive* it at the previous watermark — that case asserts
recovery, not refusal.
"""

import hashlib
import os
import shutil
import sqlite3

import pytest

from repro.cli import main
from repro.store import (
    EXIT_CONFIG,
    EXIT_CORRUPT,
    EXIT_OK,
    RunStore,
    StoreConfigError,
    StoreCorruptionError,
    repair_store,
    run_incremental,
    verify_store,
)
from repro.web.checkpoint import CheckpointError, CrawlCheckpoint

SEED = 7


def hash_offset(label: str, size: int, lo: float = 0.1, hi: float = 0.9) -> int:
    """A deterministic byte offset inside ``[lo*size, hi*size)``.

    Pure ``blake2b(seed, label)`` — the same discipline as
    :func:`repro.chaos.chosen_hit`, so every injected tear is
    reproducible from the test name alone.
    """
    digest = hashlib.blake2b(f"{SEED}\x1f{label}".encode(), digest_size=8).digest()
    window = max(1, int(size * (hi - lo)))
    return int(size * lo) + int.from_bytes(digest, "big") % window


@pytest.fixture(scope="module")
def healthy_store(tmp_path_factory):
    """One committed epoch; every test copies it before damaging it."""
    path = tmp_path_factory.mktemp("torn") / "healthy.sqlite"
    run_incremental(path, epoch=1, seed=SEED, scale=0.005, epoch_total=1)
    return path


@pytest.fixture
def store_copy(healthy_store, tmp_path):
    return shutil.copy(healthy_store, tmp_path / "store.sqlite")


class TestTornDatabase:
    def test_truncated_db_fails_typed(self, store_copy):
        size = os.path.getsize(store_copy)
        os.truncate(store_copy, hash_offset("truncate-db", size))
        with pytest.raises(StoreCorruptionError):
            verify_store(store_copy)
        with pytest.raises(StoreCorruptionError):
            RunStore(store_copy)

    def test_truncated_to_stub_fails_typed(self, store_copy):
        os.truncate(store_copy, 50)
        with pytest.raises(StoreCorruptionError):
            verify_store(store_copy)

    def test_garbage_header_fails_typed(self, store_copy):
        with open(store_copy, "r+b") as handle:
            handle.write(b"\xde\xad" * 8)
        with pytest.raises(StoreCorruptionError, match="not a database"):
            verify_store(store_copy)

    def test_garbage_mid_file_fails_typed(self, store_copy):
        size = os.path.getsize(store_copy)
        with open(store_copy, "r+b") as handle:
            for label in ("tear-a", "tear-b", "tear-c"):
                handle.seek(hash_offset(label, size))
                handle.write(b"\xa5" * 2048)
        with pytest.raises(StoreCorruptionError):
            verify_store(store_copy)

    def test_unsupported_schema_version_fails_typed(self, store_copy):
        conn = sqlite3.connect(store_copy)
        conn.execute("UPDATE meta SET value='999' WHERE key='schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreCorruptionError, match="schema version"):
            verify_store(store_copy)

    def test_missing_store_fails_typed(self, tmp_path):
        with pytest.raises(StoreCorruptionError, match="no such store"):
            verify_store(tmp_path / "never-existed.sqlite")


class TestTornWal:
    """WAL damage ≡ crash before COMMIT: survive, don't refuse."""

    def _wal(self, store_copy, payload: bytes):
        with open(str(store_copy) + "-wal", "wb") as handle:
            handle.write(payload)

    def test_garbage_wal_is_discarded(self, store_copy):
        self._wal(store_copy, b"\xa5" * 8192)
        report = verify_store(store_copy)
        assert report.watermarks["pipeline"]["epoch"] == 1

    def test_truncated_wal_is_discarded(self, store_copy):
        size = 8192
        self._wal(store_copy, b"\x00" * hash_offset("truncate-wal", size))
        report = verify_store(store_copy)
        assert report.watermarks["pipeline"]["epoch"] == 1

    def test_wal_damage_never_raises_untyped(self, store_copy):
        self._wal(store_copy, b"\xff" * 4096)
        try:
            store = RunStore(store_copy)
        except StoreCorruptionError:
            return  # typed refusal is acceptable; bare sqlite3 error is not
        store.close()


class TestInconsistencyDetection:
    """Partial state that leaked past the commit discipline is caught."""

    def _raw(self, path):
        return sqlite3.connect(path)

    def test_orphan_quarantine_rows_fail_verify(self, store_copy):
        conn = self._raw(store_copy)
        conn.execute(
            "INSERT INTO quarantine (run_id, seq, stage, ref, error_type, "
            "message, context) VALUES (999, 0, 'url_crawl', 'x', 'E', 'm', '{}')"
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreCorruptionError, match="belong to no recorded run"):
            verify_store(store_copy)

    def test_pipeline_watermark_ahead_fails_verify(self, store_copy):
        conn = self._raw(store_copy)
        conn.execute("UPDATE watermarks SET epoch=99 WHERE stage='pipeline'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreCorruptionError, match="runs ahead"):
            verify_store(store_copy)

    def test_dangling_watermark_run_id_fails_verify(self, store_copy):
        conn = self._raw(store_copy)
        conn.execute("UPDATE watermarks SET run_id=999 WHERE stage='pipeline'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreCorruptionError, match="absent from run history"):
            verify_store(store_copy)


class TestRepair:
    def test_healthy_store_is_left_alone(self, store_copy):
        report = repair_store(store_copy)
        assert not report.repaired
        assert report.verify is not None

    def test_orphan_quarantine_is_trimmed(self, store_copy):
        conn = sqlite3.connect(store_copy)
        conn.execute(
            "INSERT INTO quarantine (run_id, seq, stage, ref, error_type, "
            "message, context) VALUES (999, 0, 'url_crawl', 'x', 'E', 'm', '{}')"
        )
        conn.commit()
        conn.close()
        report = repair_store(store_copy)
        assert report.repaired
        verify_store(store_copy)  # now clean
        # The damaged original was preserved for forensics.
        assert os.path.exists(str(store_copy) + ".corrupt")

    def test_dangling_watermark_is_rolled_back(self, store_copy):
        conn = sqlite3.connect(store_copy)
        conn.execute("UPDATE watermarks SET run_id=999 WHERE stage='pipeline'")
        conn.commit()
        conn.close()
        report = repair_store(store_copy)
        assert report.repaired
        assert any("rolled pipeline watermark back" in a for a in report.actions)
        assert verify_store(store_copy).watermarks["pipeline"]["epoch"] == 1

    def test_garbage_mid_file_salvages_committed_prefix(self, store_copy):
        size = os.path.getsize(store_copy)
        with open(store_copy, "r+b") as handle:
            handle.seek(hash_offset("repair-tear", size))
            handle.write(b"\xa5" * 2048)
        report = repair_store(store_copy)
        assert report.repaired
        assert any("rebuilt store" in a for a in report.actions)
        verify_store(store_copy)

    def test_destroyed_meta_refuses(self, store_copy):
        with open(store_copy, "r+b") as handle:
            handle.write(b"\xde\xad" * 8)
        with pytest.raises(StoreCorruptionError, match="unrecoverable"):
            repair_store(store_copy)
        # The wreck is still there — repair never destroys evidence.
        assert os.path.exists(store_copy)

    def test_unfixable_inconsistency_refuses(self, store_copy):
        conn = sqlite3.connect(store_copy)
        conn.execute("UPDATE watermarks SET epoch=99 WHERE stage='pipeline'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreCorruptionError, match="refusing to repair"):
            repair_store(store_copy)


class TestStoreCli:
    def test_verify_healthy_exits_zero(self, store_copy, capsys):
        assert main(["store", "verify", str(store_copy)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "store OK" in out
        assert "watermark[pipeline]" in out

    def test_verify_shallow_flag(self, store_copy, capsys):
        assert main(["store", "verify", "--shallow", str(store_copy)]) == EXIT_OK
        assert "shallow probe" in capsys.readouterr().out

    def test_verify_torn_exits_corrupt(self, store_copy):
        os.truncate(store_copy, os.path.getsize(store_copy) // 2)
        assert main(["store", "verify", str(store_copy)]) == EXIT_CORRUPT

    def test_verify_missing_exits_corrupt(self, tmp_path):
        assert main(["store", "verify", str(tmp_path / "nope.sqlite")]) == EXIT_CORRUPT

    def test_repair_clean_store_exits_zero(self, store_copy, capsys):
        assert main(["store", "repair", str(store_copy)]) == EXIT_OK
        assert "nothing to do" in capsys.readouterr().out

    def test_repair_trims_and_exits_zero(self, store_copy, capsys):
        conn = sqlite3.connect(store_copy)
        conn.execute(
            "INSERT INTO quarantine (run_id, seq, stage, ref, error_type, "
            "message, context) VALUES (999, 0, 'url_crawl', 'x', 'E', 'm', '{}')"
        )
        conn.commit()
        conn.close()
        assert main(["store", "repair", str(store_copy)]) == EXIT_OK
        assert "post-repair verify" in capsys.readouterr().out
        assert main(["store", "verify", str(store_copy)]) == EXIT_OK

    def test_repair_unrecoverable_exits_corrupt(self, store_copy):
        with open(store_copy, "r+b") as handle:
            handle.write(b"\xde\xad" * 8)
        assert main(["store", "repair", str(store_copy)]) == EXIT_CORRUPT

    def test_exit_codes_are_distinct(self):
        assert len({EXIT_OK, EXIT_CORRUPT, EXIT_CONFIG}) == 3
        assert EXIT_OK == 0


class TestTornCheckpoint:
    def _saved_checkpoint(self, tmp_path):
        ckpt = CrawlCheckpoint.load(tmp_path / "crawl.checkpoint.json")
        for i in range(8):
            ckpt.completed[f"key{i}"] = {"status": "ok", "attempt": 1}
        ckpt.clock = 12.5
        ckpt.save()
        return ckpt.path

    def test_truncated_checkpoint_fails_typed(self, tmp_path):
        path = self._saved_checkpoint(tmp_path)
        size = os.path.getsize(path)
        os.truncate(path, hash_offset("truncate-ckpt", size))
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.load(path)

    def test_garbage_checkpoint_fails_typed(self, tmp_path):
        path = self._saved_checkpoint(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(hash_offset("garbage-ckpt", size))
            handle.write(b"\xfe\xed\xfa\xce")
        with pytest.raises(CheckpointError):
            CrawlCheckpoint.load(path)

    def test_checkpoint_error_is_both_taxonomies(self, tmp_path):
        path = self._saved_checkpoint(tmp_path)
        os.truncate(path, 3)
        with pytest.raises(StoreCorruptionError):
            CrawlCheckpoint.load(path)
        with pytest.raises(ValueError):
            CrawlCheckpoint.load(path)
