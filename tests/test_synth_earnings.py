"""Tests for proof-of-earnings generation (§5 calibration)."""

from datetime import datetime

import numpy as np
import pytest

from repro.finance import Currency, PaymentPlatform
from repro.synth import EarningsPlanner, sample_profile
from repro.synth.earnings_gen import _agc_share
from repro.synth.profiles import ActorProfile, Archetype


WINDOW = (datetime(2015, 1, 1), datetime(2017, 1, 1))


def plan_many(rng, n_actors=150, window=WINDOW):
    planner = EarningsPlanner(rng)
    proofs = []
    for _ in range(n_actors):
        profile = sample_profile(rng)
        proofs.extend(planner.plan_actor_proofs(profile, window))
    return proofs


class TestAgcShare:
    def test_rises_over_time(self):
        assert _agc_share(datetime(2011, 1, 1)) < 0.1
        assert _agc_share(datetime(2015, 1, 1)) < 0.5
        assert _agc_share(datetime(2017, 6, 1)) > 0.5

    def test_capped(self):
        assert _agc_share(datetime(2019, 3, 1)) <= 0.75


class TestProofPlans:
    def test_dates_within_window(self, rng):
        for proof in plan_many(rng, 50):
            assert WINDOW[0] <= proof.date <= WINDOW[1]

    def test_transactions_precede_proof(self, rng):
        for proof in plan_many(rng, 30):
            for when, _ in proof.transactions:
                assert when <= proof.date

    def test_amounts_positive(self, rng):
        for proof in plan_many(rng, 30):
            assert all(amount > 0 for _, amount in proof.transactions)
            assert proof.total_in_currency > 0

    def test_transaction_values_plausible(self, rng):
        """§5.2: transactions mostly US$5–50, mean ≈ US$42 in USD terms."""
        amounts = [
            amount
            for proof in plan_many(rng, 400)
            if proof.currency is Currency.USD
            for _, amount in proof.transactions
        ]
        assert 25 < np.mean(amounts) < 60
        in_band = np.mean([(3 <= a <= 60) for a in amounts])
        assert in_band > 0.6

    def test_cam_show_tail_exists(self, rng):
        amounts = [
            amount
            for proof in plan_many(rng, 400)
            if proof.currency is Currency.USD
            for _, amount in proof.transactions
        ]
        assert max(amounts) >= 150.0

    def test_btc_amounts_are_coin_scale(self, rng):
        proofs = [p for p in plan_many(rng, 600) if p.currency is Currency.BTC]
        if not proofs:  # BTC proofs are rare; do not fail on absence
            pytest.skip("no BTC proofs sampled")
        for proof in proofs:
            assert proof.total_in_currency < 50.0

    def test_platform_shift(self, rng):
        planner = EarningsPlanner(rng)
        early = [planner._pick_platform(datetime(2012, 1, 1)) for _ in range(600)]
        late = [planner._pick_platform(datetime(2018, 1, 1)) for _ in range(600)]
        early_agc = early.count(PaymentPlatform.AMAZON_GIFT_CARD)
        late_agc = late.count(PaymentPlatform.AMAZON_GIFT_CARD)
        assert late_agc > 3 * early_agc
        assert early.count(PaymentPlatform.PAYPAL) > early_agc

    def test_transaction_detail_rate(self, rng):
        proofs = plan_many(rng, 300)
        rate = np.mean([p.shows_transactions for p in proofs])
        assert 0.45 < rate < 0.75  # §5.2: around 60%

    def test_span_days_bounded(self, rng):
        for proof in plan_many(rng, 50):
            assert 0.0 <= proof.span_days <= 31.0

    def test_degenerate_window_handled(self, rng):
        planner = EarningsPlanner(rng)
        profile = sample_profile(rng)
        when = datetime(2016, 5, 5)
        proofs = planner.plan_actor_proofs(profile, (when, when))
        assert all(p.date >= when for p in proofs)
