"""Tests for the forum generator's structural guarantees."""

from datetime import datetime

import numpy as np
import pytest

from repro.forum import ewhoring_threads
from repro.synth.forum_gen import DATASET_END, DATASET_START, IdAllocator
from repro.web import extract_urls


class TestIdAllocator:
    def test_monotonic(self):
        ids = IdAllocator(start=5)
        assert ids.next() == 5
        assert ids.next() == 6

    def test_take(self):
        ids = IdAllocator()
        assert ids.take(3) == [1, 2, 3]
        assert ids.next() == 4


class TestGeneratedStructure:
    def test_thread_types_cover_all_threads(self, world):
        for thread in world.dataset.threads():
            assert thread.thread_id in world.forums.thread_types

    def test_tops_have_pack_ground_truth(self, world):
        top_ids = [t for t, v in world.forums.thread_types.items() if v == "top"]
        sharer_ids = world.forums.pack_sharer_ids
        for thread_id in top_ids[:50]:
            thread = world.dataset.thread(thread_id)
            assert thread.author_id in sharer_ids

    def test_top_link_gating(self, world):
        """Most TOP openers carry no URLs (§4.2: 18.7% have links)."""
        top_ids = [t for t, v in world.forums.thread_types.items() if v == "top"]
        with_links = 0
        for thread_id in top_ids:
            opener = world.dataset.initial_post(thread_id)
            if opener is not None and extract_urls(opener.content):
                with_links += 1
        fraction = with_links / len(top_ids)
        assert 0.05 < fraction < 0.40

    def test_ce_threads_on_ce_board(self, world):
        ce_boards = {
            b.board_id for b in world.dataset.boards() if b.is_currency_exchange
        }
        for thread_id in world.forums.ce_thread_ids:
            assert world.dataset.thread(thread_id).board_id in ce_boards

    def test_ce_headings_mostly_parseable(self, world):
        from repro.finance import parse_exchange_heading

        parsed = 0
        for thread_id in world.forums.ce_thread_ids:
            heading = world.dataset.thread(thread_id).heading
            if parse_exchange_heading(heading).parsed:
                parsed += 1
        assert parsed / max(len(world.forums.ce_thread_ids), 1) > 0.5

    def test_bhw_selection_has_no_true_tops(self, world):
        bhw = next(f for f in world.dataset.forums() if f.name == "BlackHatWorld")
        for thread in world.dataset.threads(bhw.forum_id):
            assert world.forums.thread_types[thread.thread_id] != "top"

    def test_non_hf_ewhoring_threads_carry_keyword(self, world):
        """Non-dedicated-board eWhoring threads must be findable by the §3
        heading search, otherwise the generator built unmeasurable data."""
        hf = next(f for f in world.dataset.forums() if f.has_ewhoring_board)
        ewhoring_types = {"top", "request", "tutorial", "earnings",
                          "discussion", "account_trade"}
        missing = 0
        total = 0
        for thread in world.dataset.threads():
            if thread.forum_id == hf.forum_id:
                continue
            if world.forums.thread_types[thread.thread_id] not in ewhoring_types:
                continue
            total += 1
            heading = thread.heading_lower()
            if "ewhor" not in heading and "e-whor" not in heading:
                missing += 1
        assert total > 0
        assert missing / total < 0.2  # a few earnings headings legitimately lack it

    def test_posts_ordered_within_threads(self, world):
        checked = 0
        for thread in world.dataset.threads():
            posts = world.dataset.posts_in_thread(thread.thread_id)
            dates = [p.created_at for p in posts[1:]]  # replies only
            assert dates == sorted(dates)
            checked += 1
            if checked > 300:
                break

    def test_quotes_reference_earlier_posts(self, world):
        for thread in list(world.dataset.threads())[:300]:
            posts = world.dataset.posts_in_thread(thread.thread_id)
            seen = set()
            for post in posts:
                if post.quoted_post_id is not None:
                    assert post.quoted_post_id in seen
                seen.add(post.post_id)

    def test_actor_windows_respected(self, world):
        """All of an actor's eWhoring posts fall in a bounded window."""
        selection = {t.thread_id for t in ewhoring_threads(world.dataset)}
        spans = []
        for actor_id, gen_actor in list(world.forums.actors.items())[:500]:
            dates = [
                p.created_at
                for p in world.dataset.posts_by_actor(actor_id)
                if p.thread_id in selection
            ]
            if len(dates) >= 2:
                spans.append((max(dates) - min(dates)).days)
        assert spans, "no multi-post actors found"
        # Most actors are involved for far less than the full 10 years.
        assert np.median(spans) < 1500

    def test_reply_counts_heavy_tailed(self, world):
        counts = sorted(
            world.dataset.reply_count(t.thread_id)
            for t in ewhoring_threads(world.dataset)
        )
        assert counts[-1] > 5 * max(np.median(counts), 1)

    def test_earner_proofs_recorded(self, world):
        assert world.forums.earner_ids
        assert world.forums.proof_truth
