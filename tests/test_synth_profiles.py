"""Tests for actor-profile sampling and its Table 8 calibration."""

import numpy as np
import pytest

from repro.synth import (
    Archetype,
    sample_ewhoring_post_count,
    sample_profile,
)
from repro.synth.profiles import INTEREST_CATEGORIES, POST_COUNT_ANCHORS


class TestPostCountCurve:
    def test_anchors_are_decreasing(self):
        survivals = [s for _, s in POST_COUNT_ANCHORS]
        assert survivals == sorted(survivals, reverse=True)

    def test_minimum_is_one(self, rng):
        counts = [sample_ewhoring_post_count(rng) for _ in range(2000)]
        assert min(counts) >= 1

    def test_band_fractions_match_table8(self, rng):
        n = 40_000
        counts = np.array([sample_ewhoring_post_count(rng) for _ in range(n)])
        # Expected fractions from Table 8 at full scale.
        expectations = {10: 13014 / 72982, 50: 2146 / 72982, 200: 263 / 72982}
        for threshold, expected in expectations.items():
            observed = float(np.mean(counts >= threshold))
            assert observed == pytest.approx(expected, rel=0.25), threshold

    def test_heavy_tail_exists(self, rng):
        counts = [sample_ewhoring_post_count(rng) for _ in range(40_000)]
        assert max(counts) > 400

    def test_cap_respected(self, rng):
        counts = [sample_ewhoring_post_count(rng) for _ in range(40_000)]
        assert max(counts) <= 2800


class TestArchetype:
    @pytest.mark.parametrize("posts,expected", [
        (1, Archetype.LURKER),
        (9, Archetype.LURKER),
        (10, Archetype.CASUAL),
        (49, Archetype.CASUAL),
        (50, Archetype.ACTIVE),
        (199, Archetype.ACTIVE),
        (200, Archetype.HEAVY),
        (999, Archetype.HEAVY),
        (1000, Archetype.ELITE),
    ])
    def test_band_edges(self, posts, expected):
        assert Archetype.for_post_count(posts) is expected


class TestProfiles:
    def test_interests_normalised(self, rng):
        profile = sample_profile(rng)
        for phase in ("before", "during", "after"):
            weights = profile.interests[phase]
            assert len(weights) == len(INTEREST_CATEGORIES)
            assert sum(weights) == pytest.approx(1.0)

    def test_market_interest_rises(self, rng):
        # Figure 5: the Market share grows from before to during on average.
        market = INTEREST_CATEGORIES.index("Market")
        befores, durings = [], []
        for _ in range(300):
            profile = sample_profile(rng)
            befores.append(profile.interests["before"][market])
            durings.append(profile.interests["during"][market])
        assert np.mean(durings) > np.mean(befores) + 0.1

    def test_pack_counts_only_for_sharers(self, rng):
        for _ in range(200):
            profile = sample_profile(rng)
            if profile.shares_packs:
                assert profile.n_packs_shared >= 1
            else:
                assert profile.n_packs_shared == 0

    def test_ce_threads_only_for_ce_users(self, rng):
        for _ in range(200):
            profile = sample_profile(rng)
            if profile.uses_currency_exchange:
                assert profile.n_ce_threads >= 1
            else:
                assert profile.n_ce_threads == 0

    def test_other_posts_nonnegative(self, rng):
        for _ in range(200):
            assert sample_profile(rng).other_posts >= 0

    def test_heavier_actors_share_more(self, rng):
        # Behaviour rates rise with the archetype: measure empirically.
        shares = {Archetype.LURKER: [], Archetype.ACTIVE: []}
        for _ in range(4000):
            profile = sample_profile(rng)
            if profile.archetype in shares:
                shares[profile.archetype].append(profile.shares_packs)
        assert np.mean(shares[Archetype.ACTIVE]) > np.mean(shares[Archetype.LURKER])
