"""Tests for supply-side generation and world construction."""

from datetime import datetime

import numpy as np
import pytest

from repro.media import ImageKind
from repro.synth import (
    FORUM_SPECS,
    WorldConfig,
    build_world,
    generate_supply_side,
)
from repro.synth.forum_gen import DATASET_END, DATASET_START
from repro.vision import robust_hash


class TestSupplySide:
    def make(self, rng, n_models=6, n_sites=80):
        return generate_supply_side(rng, n_models=n_models, n_origin_sites=n_sites)

    def test_counts(self, rng):
        supply = self.make(rng)
        assert len(supply.models) == 6
        assert len(supply.origin_sites) == 80

    def test_models_have_pools(self, rng):
        for model in self.make(rng).models:
            assert 40 <= model.pool_size <= 140
            kinds = {c.image.kind for c in model.pool}
            assert ImageKind.MODEL_DRESSED in kinds
            assert ImageKind.MODEL_NUDE in kinds

    def test_pool_images_share_model_id(self, rng):
        for model in self.make(rng).models:
            for circulating in model.pool:
                assert circulating.image.latent.model_id == model.model_id

    def test_copy_plans_attached(self, rng):
        supply = self.make(rng)
        counts = [c.n_copies for c in supply.circulating_images()]
        assert min(counts) >= 1
        assert np.mean(counts) > 5  # Table 5 calibration: ~13 on average

    def test_by_image_id_index(self, rng):
        supply = self.make(rng)
        for model in supply.models:
            for circulating in model.pool:
                assert supply.by_image_id[circulating.image.image_id] is circulating

    def test_origin_site_categories_weighted(self, rng):
        supply = self.make(rng, n_sites=400)
        categories = [s.category for s in supply.origin_sites]
        assert categories.count("Pornography") > categories.count("Games")

    def test_underage_rate_override(self, rng):
        supply = generate_supply_side(
            rng, n_models=40, n_origin_sites=60, underage_rate=1.0, hashlist_rate=1.0
        )
        assert all(m.is_underage for m in supply.models)
        assert all(c.in_hashlist for m in supply.models for c in m.pool)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_supply_side(rng, n_models=0, n_origin_sites=60)


class TestForumSpecs:
    def test_table1_totals(self):
        assert sum(s.n_threads for s in FORUM_SPECS) == 44_520
        assert sum(s.n_posts for s in FORUM_SPECS) == 626_784
        assert sum(s.n_actors for s in FORUM_SPECS) == 72_982
        assert sum(s.n_tops for s in FORUM_SPECS) == 4_137

    def test_bhw_has_no_tops(self):
        bhw = next(s for s in FORUM_SPECS if s.name == "BlackHatWorld")
        assert bhw.n_tops == 0
        assert bhw.bans_ewhoring

    def test_only_hackforums_has_board(self):
        with_board = [s.name for s in FORUM_SPECS if s.has_ewhoring_board]
        assert with_board == ["Hackforums"]


class TestWorld:
    def test_reproducible(self):
        a = build_world(seed=3, scale=0.005, with_other_activity=False)
        b = build_world(seed=3, scale=0.005, with_other_activity=False)
        assert a.dataset.n_posts == b.dataset.n_posts
        assert a.reverse_index.n_indexed == b.reverse_index.n_indexed
        headings_a = sorted(t.heading for t in a.dataset.threads())
        headings_b = sorted(t.heading for t in b.dataset.threads())
        assert headings_a == headings_b

    def test_seed_changes_world(self):
        a = build_world(seed=3, scale=0.005, with_other_activity=False)
        b = build_world(seed=4, scale=0.005, with_other_activity=False)
        assert sorted(t.heading for t in a.dataset.threads()) != sorted(
            t.heading for t in b.dataset.threads()
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(scale=0.0)
        with pytest.raises(TypeError):
            build_world(WorldConfig(), seed=3)

    def test_dataset_within_time_bounds(self, world):
        first, last = world.dataset.span()
        assert last <= DATASET_END
        # Other-board "before" activity may precede the window slightly.
        assert first >= DATASET_START.replace(year=DATASET_START.year - 3)

    def test_every_forum_generated(self, world):
        names = {f.name for f in world.dataset.forums()}
        assert names == {s.name for s in FORUM_SPECS}

    def test_ground_truth_tops_exist(self, world):
        tops = [t for t, v in world.forums.thread_types.items() if v == "top"]
        assert len(tops) > 10

    def test_packs_reference_known_models(self, world):
        model_ids = {m.model_id for m in world.supply.models}
        for pack in world.forums.packs.values():
            assert pack.model_id in model_ids

    def test_reverse_index_populated(self, world):
        assert world.reverse_index.n_indexed > 1000

    def test_hashlist_entries_from_underage_models(self, world):
        assert world.hashlist.n_entries > 0
        underage_ids = {m.model_id for m in world.supply.models if m.is_underage}
        for model in world.supply.models:
            for circ in model.pool:
                if circ.in_hashlist:
                    assert model.model_id in underage_ids

    def test_indexed_circulating_images_findable(self, world):
        # Any indexed, non-evaded circulating image used in a pack must be
        # discoverable through the reverse index.
        checked = 0
        for pack in world.forums.packs.values():
            if pack.evasion:
                continue
            for image in pack.images[:2]:
                circ = world.supply.by_image_id.get(image.image_id)
                if circ is None or not circ.indexed:
                    continue
                report = world.reverse_index.search_hash(robust_hash(image.pixels))
                assert report.matched
                checked += 1
                if checked >= 5:
                    return
        assert checked > 0

    def test_domain_categories_cover_origin_sites(self, world):
        for site in world.supply.origin_sites:
            assert world.domain_categories[site.domain] == site.category

    def test_proof_truth_images_hosted(self, world):
        assert len(world.forums.proof_truth) > 5
