"""Tests for tokenisation, stop words, lexicons and TF-IDF."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.text import (
    EARNINGS_KEYWORDS,
    EWHORING_KEYWORDS,
    PACK_KEYWORDS,
    REQUEST_KEYWORDS,
    STOPWORDS,
    TABLE2_LEXICONS,
    TUTORIAL_KEYWORDS,
    Lexicon,
    TfidfVectorizer,
    build_vocabulary,
    count_question_marks,
    is_stopword,
    tokenize,
    tokenize_raw,
)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize_raw("Hello WORLD") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize_raw("pack!!! (fresh)") == ["pack", "fresh"]

    def test_keeps_hyphenated_terms(self):
        assert "e-whoring" in tokenize_raw("about e-whoring here")

    def test_removes_stopwords(self):
        assert tokenize("the pack is a good pack") == ["pack", "good", "pack"]

    def test_ignores_numbers(self):
        # Pure number tokens never appear (regex requires a letter start),
        # and numeric suffixes stay attached to their word.
        assert tokenize("50 pics 100") == ["pics"]

    def test_empty_input(self):
        assert tokenize("") == []

    def test_question_marks(self):
        assert count_question_marks("what? really??") == 3
        assert count_question_marks("none") == 0

    @given(st.text(max_size=200))
    def test_tokens_are_lowercase_nonstop(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token not in STOPWORDS


class TestStopwords:
    def test_common_words_included(self):
        for word in ("the", "and", "is", "you"):
            assert is_stopword(word)

    def test_domain_words_not_stopwords(self):
        for word in ("pack", "unsaturated", "selling"):
            assert not is_stopword(word)

    def test_forum_markup_is_stopword(self):
        assert is_stopword("quote")


class TestLexicon:
    def test_single_word_matches_whole_tokens_only(self):
        lex = Lexicon("x", ("pack",))
        assert lex.matches("great pack here")
        assert not lex.matches("packing my bags")  # substring must not hit

    def test_phrase_matches_substring(self):
        assert REQUEST_KEYWORDS.matches("I am LOOKING FOR a pack")

    def test_bracketed_entry(self):
        assert REQUEST_KEYWORDS.matches("[QUESTION] about stuff")

    def test_count_matches(self):
        lex = Lexicon("x", ("pack", "looking for"))
        assert lex.count_matches("pack pack looking for pack") == 4

    def test_no_match(self):
        assert not TUTORIAL_KEYWORDS.matches("just a random heading")

    def test_table2_row1(self):
        assert EWHORING_KEYWORDS.matches("best EWHORING method")
        assert EWHORING_KEYWORDS.matches("e-whoring 101")
        # The paper does substring search for 'ewhor' in headings; the
        # lexicon token match requires the word to start with it.
        assert EWHORING_KEYWORDS.matches("ewhoring")

    def test_table2_row5(self):
        assert EARNINGS_KEYWORDS.matches("my profit this week")

    def test_all_lexicons_nonempty(self):
        for lex in TABLE2_LEXICONS:
            assert len(lex) > 0

    def test_pack_lexicon_covers_expected_terms(self):
        for term in ("unsaturated", "wts", "compilation"):
            assert term in PACK_KEYWORDS.words


class TestVocabulary:
    def test_min_df_filters(self):
        docs = ["alpha beta", "alpha gamma", "alpha delta"]
        vocab = build_vocabulary(docs, min_df=2)
        assert "alpha" in vocab
        assert "beta" not in vocab

    def test_max_terms_keeps_most_frequent(self):
        docs = ["common rare"] * 3 + ["common"] * 3
        vocab = build_vocabulary(docs, min_df=1, max_terms=1)
        assert list(vocab.terms) == ["common"]

    def test_deterministic_ordering(self):
        docs = ["b a", "a b"]
        v1 = build_vocabulary(docs, min_df=1)
        v2 = build_vocabulary(docs, min_df=1)
        assert v1.terms == v2.terms

    def test_invalid_min_df(self):
        with pytest.raises(ValueError):
            build_vocabulary(["x"], min_df=0)


class TestTfidf:
    DOCS = [
        "pack pack unsaturated pics",
        "looking for a pack please help",
        "tutorial guide ewhoring method",
        "pics pics pics collection",
    ]

    def test_shape(self):
        vec = TfidfVectorizer(min_df=1)
        matrix = vec.fit_transform(self.DOCS)
        assert matrix.shape[0] == 4
        assert matrix.shape[1] == len(vec.vocabulary)

    def test_rows_l2_normalised(self):
        matrix = TfidfVectorizer(min_df=1).fit_transform(self.DOCS)
        norms = np.linalg.norm(matrix, axis=1)
        for norm in norms:
            assert norm == pytest.approx(1.0) or norm == pytest.approx(0.0)

    def test_unknown_terms_ignored(self):
        vec = TfidfVectorizer(min_df=1).fit(self.DOCS)
        row = vec.transform(["zzz qqq www"])
        assert np.all(row == 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["x"])

    def test_rare_term_outweighs_common(self):
        # 'tutorial' appears in 1 doc, 'pack' in 2 — higher IDF for rare.
        vec = TfidfVectorizer(min_df=1).fit(self.DOCS)
        row = vec.transform(["pack tutorial"])[0]
        pack_idx = vec.vocabulary.index["pack"]
        tut_idx = vec.vocabulary.index["tutorial"]
        assert row[tut_idx] > row[pack_idx]

    @given(st.lists(st.text(alphabet="abcde ", min_size=1, max_size=30),
                    min_size=2, max_size=8))
    def test_fit_transform_never_nan(self, docs):
        matrix = TfidfVectorizer(min_df=1).fit_transform(docs)
        assert not np.any(np.isnan(matrix))

    @staticmethod
    def _count_matrix_loop(vec, documents):
        """Reference implementation: the obvious per-token nested loop."""
        from repro.text.tokenize import tokenize

        index = vec.vocabulary.index
        matrix = np.zeros((len(documents), len(vec.vocabulary)), dtype=np.float64)
        for row, document in enumerate(documents):
            for token in tokenize(document):
                column = index.get(token)
                if column is not None:
                    matrix[row, column] += 1.0
        return matrix

    def test_count_matrix_matches_loop(self):
        vec = TfidfVectorizer(min_df=1).fit(self.DOCS)
        docs = self.DOCS + ["zzz unknown only", "", "pack pack pack pack"]
        vectorised = vec._count_matrix(docs)
        reference = self._count_matrix_loop(vec, docs)
        assert vectorised.dtype == reference.dtype
        assert np.array_equal(vectorised, reference)

    @given(st.lists(st.text(alphabet="abcde ", min_size=0, max_size=40),
                    min_size=1, max_size=10))
    def test_count_matrix_matches_loop_property(self, docs):
        vec = TfidfVectorizer(min_df=1).fit(self.DOCS)
        assert np.array_equal(
            vec._count_matrix(docs), self._count_matrix_loop(vec, docs)
        )

    def test_count_matrix_empty_corpus(self):
        vec = TfidfVectorizer(min_df=1).fit(self.DOCS)
        assert vec._count_matrix([]).shape == (0, len(vec.vocabulary))
