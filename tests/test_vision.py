"""Tests for the vision substrate: NSFW, OCR, PhotoDNA, reverse search."""

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media import ImageKind, SyntheticImage, apply_transform, sample_latent
from repro.vision import (
    AbuseSeverity,
    HashListEntry,
    HashListService,
    IndexedCopy,
    NsfwScorer,
    OcrEngine,
    ReportLog,
    ReportRecord,
    ReverseImageIndex,
    hamming_distance,
    nsfw_score,
    ocr_word_count,
    robust_hash,
    skin_mask,
)

T0 = datetime(2015, 1, 1)


def render(kind, rng, model_id=None):
    lat = sample_latent(rng, kind, model_id=model_id)
    return SyntheticImage(0, lat).pixels


class TestNsfw:
    def test_screenshots_score_near_zero(self, rng):
        for _ in range(5):
            score = nsfw_score(render(ImageKind.PROOF_SCREENSHOT, rng))
            assert score < 0.01

    def test_nude_scores_high(self, rng):
        for _ in range(5):
            assert nsfw_score(render(ImageKind.MODEL_NUDE, rng, 1)) > 0.3

    def test_sexual_scores_highest_band(self, rng):
        assert nsfw_score(render(ImageKind.MODEL_SEXUAL, rng, 1)) > 0.5

    def test_dressed_in_ambiguous_band(self, rng):
        # §4.4: clothed models land between ~0.03 and ~0.97, never near 0.
        scores = [nsfw_score(render(ImageKind.MODEL_DRESSED, rng, 1)) for _ in range(10)]
        assert all(s > 0.01 for s in scores)

    def test_score_in_unit_interval(self, rng):
        for kind in ImageKind:
            score = nsfw_score(render(kind, rng, 1 if kind.is_model else None))
            assert 0.0 < score < 1.0

    def test_skin_mask_rejects_grayscale_shape(self):
        with pytest.raises(ValueError):
            skin_mask(np.zeros((8, 8)))

    def test_skin_mask_detects_skin_patch(self):
        pixels = np.zeros((8, 8, 3))
        pixels[:, :, 0] = 0.86
        pixels[:, :, 1] = 0.62
        pixels[:, :, 2] = 0.50
        assert skin_mask(pixels).all()

    def test_skin_mask_rejects_blue(self):
        pixels = np.zeros((8, 8, 3))
        pixels[:, :, 2] = 0.9
        assert not skin_mask(pixels).any()

    def test_scorer_callable(self, rng):
        scorer = NsfwScorer()
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        assert scorer(pixels) == scorer.score(pixels)


class TestOcr:
    def test_counts_words_in_screenshots(self, rng):
        for _ in range(5):
            lat = sample_latent(rng, ImageKind.PROOF_SCREENSHOT)
            count = ocr_word_count(SyntheticImage(0, lat).pixels)
            assert abs(count - lat.word_count) <= 3

    def test_few_words_on_model_images(self, rng):
        for _ in range(5):
            count = ocr_word_count(render(ImageKind.MODEL_NUDE, rng, 1))
            assert count <= 4

    def test_blank_image_zero_words(self):
        assert ocr_word_count(np.full((32, 32, 3), 0.9)) == 0

    def test_rejects_grayscale(self):
        with pytest.raises(ValueError):
            OcrEngine().word_count(np.zeros((8, 8)))

    def test_boxes_sorted_reading_order(self, rng):
        lat = sample_latent(rng, ImageKind.DOCUMENT)
        boxes = OcrEngine().find_words(SyntheticImage(0, lat).pixels)
        keys = [(b.top, b.left) for b in boxes]
        assert keys == sorted(keys)

    def test_wordbox_geometry(self, rng):
        lat = sample_latent(rng, ImageKind.DOCUMENT)
        for box in OcrEngine().find_words(SyntheticImage(0, lat).pixels):
            assert box.width >= 3
            assert box.height <= 3
            assert box.area == box.width * box.height


class TestRobustHash:
    def test_deterministic(self, rng):
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        assert robust_hash(pixels) == robust_hash(pixels)

    def test_64_bit_range(self, rng):
        value = robust_hash(render(ImageKind.LANDSCAPE, rng))
        assert 0 <= value < 2**64

    def test_survives_recompression(self, rng):
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        h = robust_hash(pixels)
        h2 = robust_hash(apply_transform("recompress", pixels, seed=9))
        assert hamming_distance(h, h2) <= 4

    def test_survives_resize(self, rng):
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        h2 = robust_hash(apply_transform("resize_small", pixels, seed=9))
        assert hamming_distance(robust_hash(pixels), h2) <= 9

    def test_mirror_defeats_hash(self, rng):
        # The documented evasion (§4.5) must actually work.
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        h2 = robust_hash(apply_transform("mirror", pixels))
        assert hamming_distance(robust_hash(pixels), h2) > 12

    def test_distinct_images_far_apart(self, rng):
        a = robust_hash(render(ImageKind.MODEL_NUDE, rng, 1))
        b = robust_hash(render(ImageKind.MODEL_NUDE, rng, 2))
        assert hamming_distance(a, b) > 10

    def test_brightness_invariance(self, rng):
        # The DC term is dropped, so a global brightness shift is benign.
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        brighter = np.clip(pixels + 0.08, 0.0, 1.0)
        assert hamming_distance(robust_hash(pixels), robust_hash(brighter)) <= 8

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_hamming_symmetry(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)
        assert hamming_distance(a, a) == 0
        assert 0 <= hamming_distance(a, b) <= 64


class TestHashList:
    def test_empty_list_never_matches(self, rng):
        service = HashListService()
        assert not service.match(render(ImageKind.MODEL_NUDE, rng, 1)).matched

    def test_exact_match(self, rng):
        service = HashListService()
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        entry = service.add_known_image(pixels, AbuseSeverity.CATEGORY_B, victim_age=17)
        result = service.match(pixels)
        assert result.matched
        assert result.entry == entry
        assert result.distance == 0

    def test_match_within_radius(self, rng):
        service = HashListService(radius=10)
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        service.add_known_image(pixels, AbuseSeverity.CATEGORY_A)
        recompressed = apply_transform("recompress", pixels, seed=1)
        assert service.match(recompressed).matched

    def test_no_match_beyond_radius(self, rng):
        service = HashListService(radius=5)
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        service.add_known_image(pixels, AbuseSeverity.CATEGORY_A)
        other = render(ImageKind.MODEL_NUDE, rng, 99)
        assert not service.match(other).matched

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            HashListService(radius=64)

    def test_nearest_entry_wins(self, rng):
        service = HashListService(radius=20)
        service.add_entry(HashListEntry(0b1111, AbuseSeverity.CATEGORY_C))
        service.add_entry(HashListEntry(0b0000, AbuseSeverity.CATEGORY_A))
        result = service.match_hash(0b0001)
        assert result.entry.severity is AbuseSeverity.CATEGORY_A


class TestReportLog:
    def make_record(self, severity=AbuseSeverity.CATEGORY_B, urls=("u1", "u2")):
        return ReportRecord(
            image_ref="digest",
            urls=tuple(urls),
            severity=severity,
            victim_age=17,
            hosting_regions=("UK", "Europe"),
            site_types=("forum", "blog"),
        )

    def test_histograms(self):
        log = ReportLog()
        log.report(self.make_record())
        log.report(self.make_record(severity=AbuseSeverity.CATEGORY_A, urls=("u3",)))
        assert log.n_reports == 2
        assert len(log.actioned_urls()) == 3
        assert log.severity_histogram()[AbuseSeverity.CATEGORY_B] == 2
        assert log.region_histogram()["UK"] == 2
        assert log.site_type_histogram()["forum"] == 2


class TestReverseIndex:
    def test_search_empty_index(self, rng):
        index = ReverseImageIndex()
        report = index.search_pixels(render(ImageKind.MODEL_NUDE, rng, 1))
        assert report.n_matches == 0
        assert not report.matched

    def test_finds_indexed_copy(self, rng):
        index = ReverseImageIndex()
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        copy = IndexedCopy(url="https://a.com/1", domain="a.com", crawl_date=T0)
        index.index_pixels(pixels, copy)
        report = index.search_pixels(pixels)
        assert report.matched
        assert report.matches[0].copy == copy
        assert report.matches[0].distance == 0

    def test_matches_sorted_by_similarity(self, rng):
        index = ReverseImageIndex(radius=12)
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        h = robust_hash(pixels)
        index.index_hash(h ^ 0b111, IndexedCopy("https://far.com/x", "far.com", T0))
        index.index_hash(h, IndexedCopy("https://near.com/x", "near.com", T0))
        report = index.search_hash(h)
        assert [m.copy.domain for m in report.matches] == ["near.com", "far.com"]

    def test_max_results(self, rng):
        index = ReverseImageIndex()
        h = 12345
        for i in range(10):
            index.index_hash(h, IndexedCopy(f"https://d{i}.com/x", f"d{i}.com", T0))
        assert index.search_hash(h, max_results=3).n_matches == 3

    def test_domains_deduplicated(self, rng):
        index = ReverseImageIndex()
        h = 777
        for i in range(3):
            index.index_hash(h, IndexedCopy(f"https://same.com/{i}", "same.com", T0))
        report = index.search_hash(h)
        assert report.domains() == ["same.com"]

    def test_earliest_crawl(self):
        index = ReverseImageIndex()
        early = datetime(2010, 1, 1)
        late = datetime(2018, 1, 1)
        index.index_hash(1, IndexedCopy("https://a.com/1", "a.com", late))
        index.index_hash(1, IndexedCopy("https://b.com/1", "b.com", early))
        assert index.search_hash(1).earliest_crawl() == early

    def test_max_results_tie_break_stability(self, rng):
        # With many distance ties, the argpartition top-k path must
        # return exactly the same prefix as the full stable sort:
        # distance-major, insertion-order-minor.
        index = ReverseImageIndex(radius=12)
        h = 0xDEADBEEF
        n = 40
        # Interleave distances 0 and 3 so every distance class has many
        # tied entries spread across insertion order.
        for i in range(n):
            delta = 0 if i % 2 == 0 else 0b111
            index.index_hash(h ^ delta, IndexedCopy(f"https://d{i}.com/x", f"d{i}.com", T0))
        full = index.search_hash(h)
        assert full.n_matches == n
        for k in (1, 3, 7, n - 1, n, n + 5):
            trimmed = index.search_hash(h, max_results=k)
            assert trimmed.matches == full.matches[:k]

    def test_max_results_tie_break_stability_batched(self, rng):
        index = ReverseImageIndex(radius=12)
        queries = [0x1234, 0xFFFF00, 0xABCDEF]
        for i in range(30):
            q = queries[i % len(queries)]
            delta = (0, 0b1, 0b11)[i % 3]
            index.index_hash(q ^ delta, IndexedCopy(f"https://b{i}.com/x", f"b{i}.com", T0))
        full = index.search_hashes(queries)
        trimmed = index.search_hashes(queries, max_results=4)
        for full_report, trimmed_report in zip(full, trimmed):
            assert trimmed_report.matches == full_report.matches[:4]

    def test_max_results_zero(self):
        index = ReverseImageIndex()
        index.index_hash(1, IndexedCopy("https://a.com/1", "a.com", T0))
        assert index.search_hash(1, max_results=0).n_matches == 0

    def test_mirror_not_found(self, rng):
        index = ReverseImageIndex()
        pixels = render(ImageKind.MODEL_NUDE, rng, 1)
        index.index_pixels(pixels, IndexedCopy("https://a.com/1", "a.com", T0))
        mirrored = apply_transform("mirror", pixels)
        assert not index.search_pixels(mirrored).matched
