"""Property tests for the batched vision engine (DESIGN.md §7).

The contract under test is *bit-identity*: the batched paths must agree
exactly — not approximately — with the scalar functions they replace, on
both popcount backends (native ``np.bitwise_count`` and the NumPy < 2.0
lookup-table fallback).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vision import (
    hamming_distance,
    hamming_matrix,
    hash_batch,
    hash_batch_ints,
    pack_bits_rows,
    popcount,
    prepare_thumbnails,
    robust_hash,
)
from repro.vision.bits import HAS_NATIVE_POPCOUNT, _popcount_lookup
from repro.vision.photodna import _block_mean_resize


# ---------------------------------------------------------------------------
# Raster strategies: small random images, uniform and mixed shapes.
# ---------------------------------------------------------------------------

def _raster(seed: int, height: int, width: int, channels: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    shape = (height, width) if channels == 0 else (height, width, channels)
    return rng.uniform(0.0, 255.0, size=shape)


raster_params = st.tuples(
    st.integers(0, 2**31 - 1),       # seed
    st.integers(1, 48),              # height
    st.integers(1, 48),              # width
    st.sampled_from([0, 1, 3, 4]),   # channels (0 = grayscale 2-D)
)


class TestHashBatchBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(raster_params, min_size=0, max_size=6))
    def test_mixed_shapes_match_scalar(self, params):
        rasters = [_raster(*p) for p in params]
        batched = hash_batch(rasters)
        assert batched.dtype == np.uint64
        assert [int(h) for h in batched] == [robust_hash(r) for r in rasters]

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 40),
        st.integers(1, 40),
        st.sampled_from([0, 1, 3]),
        st.integers(1, 8),
    )
    def test_uniform_stack_matches_scalar(self, seed, h, w, c, n):
        # Same-shape rasters exercise the vectorised stacked path.
        rasters = [_raster(seed + i, h, w, c) for i in range(n)]
        assert hash_batch_ints(rasters) == [robust_hash(r) for r in rasters]

    def test_chunked_uniform_stack(self):
        # More rasters than _STACK_CHUNK so the chunk loop runs twice.
        rasters = [_raster(i, 16, 16, 3) for i in range(130)]
        assert hash_batch_ints(rasters) == [robust_hash(r) for r in rasters]

    def test_empty_batch(self):
        out = hash_batch([])
        assert out.shape == (0,) and out.dtype == np.uint64
        assert prepare_thumbnails([]).shape == (0, 32, 32)

    def test_thumbnails_match_scalar_resize(self):
        rasters = [_raster(i, 33, 47, 3) for i in range(5)]
        thumbs = prepare_thumbnails(rasters)
        for raster, thumb in zip(rasters, thumbs):
            expected = _block_mean_resize(raster.mean(axis=2), 32)
            np.testing.assert_array_equal(thumb, expected)


class TestPopcount:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**64 - 1))
    def test_scalar_matches_bin_count(self, value):
        assert int(popcount(value)) == bin(value).count("1")

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=64))
    def test_array_matches_bin_count(self, values):
        words = np.array(values, dtype=np.uint64)
        out = popcount(words)
        assert out.dtype == np.int64
        assert out.tolist() == [bin(v).count("1") for v in values]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=64))
    def test_fallback_matches_native_contract(self, values):
        # The lookup-table path must agree with bin().count on any NumPy.
        words = np.array(values, dtype=np.uint64)
        assert _popcount_lookup(words).tolist() == [bin(v).count("1") for v in values]

    @pytest.mark.skipif(not HAS_NATIVE_POPCOUNT, reason="NumPy < 2.0")
    def test_fallback_matches_native_when_both_exist(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, size=(8, 9), dtype=np.uint64)
        np.testing.assert_array_equal(
            _popcount_lookup(words), np.bitwise_count(words).astype(np.int64)
        )

    def test_preserves_shape(self):
        words = np.zeros((3, 4), dtype=np.uint64)
        assert popcount(words).shape == (3, 4)


class TestPackBits:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.booleans(), min_size=64, max_size=64),
                    min_size=1, max_size=8))
    def test_msb_first_pack(self, rows):
        bits = np.array(rows, dtype=bool)
        packed = pack_bits_rows(bits)
        for row, value in zip(rows, packed):
            expected = 0
            for bit in row:  # MSB first
                expected = (expected << 1) | int(bit)
            assert int(value) == expected

    def test_roundtrip_with_popcount(self):
        rng = np.random.default_rng(1)
        bits = rng.random((16, 64)) > 0.5
        assert popcount(pack_bits_rows(bits)).tolist() == bits.sum(axis=1).tolist()


class TestHammingMatrix:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=12),
        st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=12),
    )
    def test_matches_scalar_hamming(self, queries, corpus):
        q = np.array(queries, dtype=np.uint64)
        c = np.array(corpus, dtype=np.uint64)
        matrix = hamming_matrix(q, c)
        assert matrix.shape == (len(queries), len(corpus))
        for i, a in enumerate(queries):
            for j, b in enumerate(corpus):
                assert int(matrix[i, j]) == hamming_distance(a, b)


class TestBlockMeanResizeRegression:
    def test_extreme_aspect_ratio_averages_long_axis(self):
        """The 4×1000 raster must area-average the 1000-pixel axis.

        The seed implementation fell back to nearest-neighbour on *both*
        axes whenever *either* was shorter than the target grid, so a
        4×1000 image sampled 32 single columns instead of averaging
        31¼-pixel blocks.  Each axis now decides independently.
        """
        raster = np.zeros((4, 1000))
        raster[:, 500:] = 100.0  # step function along the long axis
        small = _block_mean_resize(raster, 32)
        assert small.shape == (32, 32)
        # Block 16 spans columns 500..531¼ — pure 100s; block 15 spans
        # 468¾..500 — pure 0s.  The average must see the step exactly.
        assert np.all(small[:, :16] == 0.0)
        assert np.all(small[:, 16:] == 100.0)
        # Transposed raster: same behaviour on axis 0.
        small_t = _block_mean_resize(raster.T, 32)
        assert np.all(small_t[:16, :] == 0.0)
        assert np.all(small_t[16:, :] == 100.0)

    def test_uneven_blocks_are_mean_weighted(self):
        # 3 → 2 resize bins at integer edges [0, 1, 3]:
        # block 0 = v0, block 1 = (v1 + v2) / 2.
        row = np.array([[0.0, 6.0, 12.0]])
        out = _block_mean_resize(np.repeat(row, 3, axis=0), 2)
        np.testing.assert_allclose(out[0], [0.0, 9.0])

    def test_short_axis_uses_nearest_neighbour(self):
        raster = np.arange(4.0)[:, None] * np.ones((1, 64))
        small = _block_mean_resize(raster, 32)
        # Axis 0 (4 < 32) is index-sampled; values stay exact row values.
        assert set(np.unique(small)) <= {0.0, 1.0, 2.0, 3.0}

    @settings(max_examples=20, deadline=None)
    @given(raster_params)
    def test_hash_finite_on_any_shape(self, params):
        value = robust_hash(_raster(*params))
        assert 0 <= value < 2**64
