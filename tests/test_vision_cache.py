"""Tests for the content-addressed VisionCache and its stage wiring.

Covers the cache itself (hit/miss accounting, LRU eviction, batched
``hashes_for``), the cache-aware ``NsfvClassifier.classify_batch`` (must
be verdict-identical to the scalar path, including OCR-band edges), and
the abuse filter's hash deduplication (each distinct digest hashed once,
result semantics unchanged).
"""

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core.abuse_filter as abuse_filter_module
from repro.core import AbuseFilter
from repro.core.nsfv import NsfvClassifier, NsfvVerdict
from repro.media import ImageKind, SyntheticImage, sample_latent
from repro.vision import (
    AbuseSeverity,
    HashListService,
    VisionCache,
    VisionCacheStats,
    hash_batch,
    robust_hash,
)
from repro.web import LinkRecord, Url
from repro.web.crawler import CrawledImage, content_digest

T0 = datetime(2016, 1, 1)


# ---------------------------------------------------------------------------
# VisionCache unit behaviour
# ---------------------------------------------------------------------------

class TestVisionCache:
    def test_get_or_compute_memoises(self):
        cache = VisionCache()
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute("d1", "hash", compute) == 42
        assert cache.get_or_compute("d1", "hash", compute) == 42
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_fields_are_independent(self):
        cache = VisionCache()
        cache.put("d1", "hash", 7)
        assert cache.get("d1", "hash") == 7
        assert cache.get("d1", "nsfw") is None  # same digest, other field
        cache.put("d1", "nsfw", 0.5)
        assert cache.get("d1", "nsfw") == 0.5

    def test_unknown_field_rejected(self):
        cache = VisionCache()
        with pytest.raises(ValueError):
            cache.put("d1", "bogus", 1)
        with pytest.raises(ValueError):
            cache.get("d1", "bogus")

    def test_lru_eviction(self):
        cache = VisionCache(max_entries=2)
        cache.put("a", "hash", 1)
        cache.put("b", "hash", 2)
        assert cache.get("a", "hash") == 1  # refresh a → b is now LRU
        cache.put("c", "hash", 3)
        assert "b" not in cache
        assert cache.get("a", "hash") == 1
        assert cache.get("c", "hash") == 3
        assert cache.stats().evictions == 1
        assert len(cache) == 2

    def test_eviction_drops_all_fields_together(self):
        cache = VisionCache(max_entries=1)
        cache.put("a", "hash", 1)
        cache.put("a", "nsfw", 0.2)
        cache.put("b", "hash", 2)
        assert cache.get("a", "hash") is None
        assert cache.get("a", "nsfw") is None

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            VisionCache(max_entries=0)

    def test_clear_preserves_counters(self):
        cache = VisionCache()
        cache.put("a", "hash", 1)
        cache.get("a", "hash")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_stats_summary_renders(self):
        stats = VisionCacheStats(hits=3, misses=1, evictions=0, n_entries=2)
        text = stats.summary()
        assert "hits=3" in text and "75.0%" in text

    def test_hashes_for_batches_and_dedupes(self):
        cache = VisionCache()
        cache.put("warm", "hash", 99)
        batch_calls = []

        def compute_batch(rasters):
            batch_calls.append(list(rasters))
            return [int(r) * 10 for r in rasters]

        keyed = [
            ("warm", lambda: 0),   # hit: raster fn must not run
            ("x", lambda: 1),
            ("x", lambda: 1),      # within-batch duplicate
            ("y", lambda: 2),
        ]
        out = cache.hashes_for(keyed, compute_batch)
        assert out == [99, 10, 10, 20]
        # One batch call with only the two distinct missing rasters.
        assert batch_calls == [[1, 2]]
        # Second call is now fully cached.
        assert cache.hashes_for(keyed, compute_batch) == [99, 10, 10, 20]
        assert len(batch_calls) == 1

    def test_hashes_for_empty(self):
        assert VisionCache().hashes_for([], lambda r: []) == []


# ---------------------------------------------------------------------------
# Cache-aware NSFV classification
# ---------------------------------------------------------------------------

class CountingScorer:
    """NSFW 'scorer' returning a canned score per raster id."""

    def __init__(self, scores):
        self.scores = scores
        self.calls = 0

    def score(self, pixels):
        self.calls += 1
        return self.scores[int(pixels[0, 0, 0])]


class CountingOcr:
    def __init__(self, words):
        self.words = words
        self.calls = 0

    def word_count(self, pixels):
        self.calls += 1
        return self.words[int(pixels[0, 0, 0])]


def _tagged_raster(tag: int) -> np.ndarray:
    pixels = np.zeros((2, 2, 3))
    pixels[0, 0, 0] = tag
    return pixels


class TestClassifyBatchCache:
    # Scores straddling every Algorithm 1 band and its edges.
    BAND_SCORES = [0.0, 0.009, 0.01, 0.02, 0.049, 0.05, 0.15, 0.30, 0.31, 1.0]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 9), min_size=0, max_size=12),
        st.lists(st.integers(0, 25), min_size=10, max_size=10),
    )
    def test_verdicts_identical_to_scalar(self, tags, words):
        scores = self.BAND_SCORES
        clf_scalar = NsfvClassifier(
            scorer=CountingScorer(scores), ocr=CountingOcr(words)
        )
        clf_cached = NsfvClassifier(
            scorer=CountingScorer(scores), ocr=CountingOcr(words)
        )
        rasters = [_tagged_raster(t) for t in tags]
        expected = [clf_scalar.classify(r) for r in rasters]
        got = clf_cached.classify_batch(
            rasters, digests=[f"d{t}" for t in tags], cache=VisionCache()
        )
        assert got == expected

    def test_ocr_only_runs_in_ambiguous_band(self):
        words = [15] * 10
        ocr = CountingOcr(words)
        clf = NsfvClassifier(scorer=CountingScorer(self.BAND_SCORES), ocr=ocr)
        tags = list(range(10))
        clf.classify_batch(
            [_tagged_raster(t) for t in tags],
            digests=[f"d{t}" for t in tags],
            cache=VisionCache(),
        )
        # Ambiguous band is 0.01 <= s <= 0.30 (strict comparisons on both
        # clear-cut sides): scores 0.01, 0.02, 0.049, 0.05, 0.15, 0.30.
        assert ocr.calls == 6

    def test_duplicate_digests_scored_once(self):
        scorer = CountingScorer({1: 0.2})
        ocr = CountingOcr({1: 30})
        clf = NsfvClassifier(scorer=scorer, ocr=ocr)
        rasters = [_tagged_raster(1)] * 4
        cache = VisionCache()
        verdicts = clf.classify_batch(rasters, digests=["same"] * 4, cache=cache)
        assert scorer.calls == 1 and ocr.calls == 1
        assert len(verdicts) == 4
        assert all(v == verdicts[0] for v in verdicts)
        # A later batch over the same digests is served from cache.
        clf.classify_batch(rasters[:1], digests=["same"], cache=cache)
        assert scorer.calls == 1 and ocr.calls == 1

    def test_without_cache_falls_back_to_scalar(self):
        scorer = CountingScorer({1: 0.2})
        clf = NsfvClassifier(scorer=scorer, ocr=CountingOcr({1: 5}))
        out = clf.classify_batch([_tagged_raster(1)] * 2)
        assert scorer.calls == 2
        assert out == [NsfvVerdict(False, 0.2, 5)] * 2

    def test_misaligned_digests_rejected(self):
        clf = NsfvClassifier()
        with pytest.raises(ValueError):
            clf.classify_batch([_tagged_raster(1)], digests=["a", "b"])


# ---------------------------------------------------------------------------
# Abuse filter hashing deduplication
# ---------------------------------------------------------------------------

def _crawled(image, thread_id=1, digest=None):
    return CrawledImage(
        image=image,
        digest=digest if digest is not None else content_digest(image),
        link=LinkRecord(
            url=Url("imgur.com", f"/x{image.image_id}"),
            thread_id=thread_id,
            post_id=1,
            author_id=1,
            posted_at=T0,
        ),
    )


class TestAbuseFilterDedupe:
    @pytest.fixture()
    def images(self, rng):
        bad = SyntheticImage(
            1, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1, is_underage=True)
        )
        clean = SyntheticImage(2, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=2))
        return bad, clean

    def _service(self, bad):
        service = HashListService()
        service.add_known_image(
            bad.pixels, AbuseSeverity.CATEGORY_B, victim_age=10
        )
        return service

    def test_each_digest_hashed_once(self, images, monkeypatch):
        bad, clean = images
        calls = []

        def counting_hash_batch(rasters):
            calls.append(len(rasters))
            return hash_batch(rasters)

        monkeypatch.setattr(abuse_filter_module, "hash_batch", counting_hash_batch)
        # Three crawled copies of `bad` (same digest), two of `clean`.
        crawled = [
            _crawled(bad, thread_id=1),
            _crawled(bad, thread_id=2),
            _crawled(bad, thread_id=3),
            _crawled(clean, thread_id=4),
            _crawled(clean, thread_id=5),
        ]
        result = AbuseFilter(self._service(bad)).sweep(crawled)
        # One batch over the two distinct digests only.
        assert calls == [2]
        # Result semantics unchanged by deduplication:
        assert result.n_matched_images == 1
        assert result.matched_digests == {crawled[0].digest}
        assert result.affected_thread_ids == {1, 2, 3}
        assert all(not result.is_clean(c) for c in crawled[:3])
        assert all(result.is_clean(c) for c in crawled[3:])
        # Every matched copy's pixels were dropped.
        assert all(c.image._pixels is None for c in crawled[:3])

    def test_cache_shares_hashes_across_sweeps(self, images):
        bad, clean = images
        cache = VisionCache()
        service = self._service(bad)
        first = AbuseFilter(service, cache=cache).sweep([_crawled(clean)])
        assert first.n_matched_images == 0
        before = cache.stats()
        assert before.misses >= 1
        # Second sweep over the same digest: pure cache hits, no recompute.
        AbuseFilter(service, cache=cache).sweep([_crawled(clean)])
        after = cache.stats()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_cached_and_uncached_sweeps_agree(self, images):
        bad, clean = images
        crawled_a = [_crawled(bad), _crawled(clean), _crawled(bad)]
        crawled_b = [_crawled(bad), _crawled(clean), _crawled(bad)]
        plain = AbuseFilter(self._service(bad)).sweep(crawled_a)
        cached = AbuseFilter(self._service(bad), cache=VisionCache()).sweep(crawled_b)
        assert plain.n_matched_images == cached.n_matched_images
        assert plain.matched_digests == cached.matched_digests
        assert plain.affected_thread_ids == cached.affected_thread_ids
