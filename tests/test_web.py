"""Tests for the simulated-internet substrate."""

from datetime import datetime, timedelta

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media import ImageKind, Pack, SyntheticImage, sample_latent
from repro.web import (
    CLOUD_STORAGE_SERVICES,
    IMAGE_SHARING_SERVICES,
    CrawlStats,
    Crawler,
    FetchStatus,
    HostingService,
    LinkRecord,
    OriginSite,
    ServiceKind,
    SimulatedInternet,
    Url,
    WaybackArchive,
    all_services,
    content_digest,
    extract_urls,
    normalize_url,
    registrable_domain,
    service_by_domain,
)

T0 = datetime(2014, 5, 1)


def make_image(rng, kind=ImageKind.MODEL_NUDE, image_id=1):
    return SyntheticImage(image_id, sample_latent(rng, kind, model_id=1 if kind.is_model else None))


def make_pack(rng, pack_id=1, n=4):
    images = [make_image(rng, image_id=100 + i) for i in range(n)]
    return Pack(pack_id=pack_id, model_id=1, images=images)


class TestUrl:
    def test_str_round_trip(self):
        url = Url("imgur.com", "/abc")
        assert str(url) == "https://imgur.com/abc"

    def test_default_path(self):
        assert str(Url("a.com")) == "https://a.com/"

    def test_invalid_host(self):
        with pytest.raises(ValueError):
            Url("nodots")

    def test_registrable_domain(self):
        assert registrable_domain("www.imgur.com") == "imgur.com"
        assert registrable_domain("a.b.example.org") == "example.org"
        assert registrable_domain("ge.tt") == "ge.tt"

    def test_normalize_url(self):
        url = normalize_url("http://www.Imgur.com/xyz")
        assert url == Url("imgur.com", "/xyz")

    def test_normalize_rejects_garbage(self):
        assert normalize_url("not a url") is None

    def test_extract_urls_basic(self):
        text = "previews https://imgur.com/a1 and https://mega.nz/f/x2 done"
        urls = extract_urls(text)
        assert [u.host for u in urls] == ["imgur.com", "mega.nz"]

    def test_extract_preserves_duplicates(self):
        text = "https://a.com/x https://a.com/x"
        assert len(extract_urls(text)) == 2

    def test_extract_strips_trailing_punctuation(self):
        urls = extract_urls("see (https://imgur.com/abc) now")
        assert urls[0].path == "/abc"

    def test_extract_none(self):
        assert extract_urls("no links here") == []

    @given(st.text(max_size=200))
    @settings(max_examples=50)
    def test_extract_never_crashes(self, text):
        extract_urls(text)


class TestSites:
    def test_weights_match_table3_ordering(self):
        weights = {s.name: s.weight for s in IMAGE_SHARING_SERVICES}
        assert weights["imgur"] > weights["Gyazo"] > weights["ImageShack"]

    def test_weights_match_table4_ordering(self):
        weights = {s.name: s.weight for s in CLOUD_STORAGE_SERVICES}
        assert weights["MediaFire"] > weights["mega"] > weights["Dropbox"]

    def test_registration_walls(self):
        assert service_by_domain("dropbox.com").requires_registration
        assert service_by_domain("drive.google.com").requires_registration
        assert not service_by_domain("mediafire.com").requires_registration

    def test_oron_defunct(self):
        assert service_by_domain("oron.com").defunct

    def test_lookup_unknown(self):
        assert service_by_domain("example.org") is None

    def test_all_services_filter(self):
        image = all_services(ServiceKind.IMAGE_SHARING)
        cloud = all_services(ServiceKind.CLOUD_STORAGE)
        assert all(s.kind is ServiceKind.IMAGE_SHARING for s in image)
        assert all(s.kind is ServiceKind.CLOUD_STORAGE for s in cloud)
        assert len(all_services()) == len(image) + len(cloud)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            HostingService("x", "x.com", ServiceKind.IMAGE_SHARING, 1, dead_link_rate=1.5)
        with pytest.raises(ValueError):
            HostingService("x", "x.com", ServiceKind.IMAGE_SHARING, 0)


class TestInternet:
    def make_service(self, **kwargs):
        defaults = dict(
            name="svc", domain="svc.com", kind=ServiceKind.IMAGE_SHARING,
            weight=1.0, dead_link_rate=0.0, tos_takedown_rate=0.0,
        )
        defaults.update(kwargs)
        return HostingService(**defaults)

    def test_host_and_fetch_ok(self, rng):
        net = SimulatedInternet(seed=1)
        image = make_image(rng)
        url = net.host_on_service(self.make_service(), image, T0, contains_nudity=False)
        result = net.fetch(url)
        assert result.ok
        assert result.resource is image

    def test_defunct_service(self, rng):
        net = SimulatedInternet(seed=1)
        url = net.host_on_service(
            self.make_service(defunct=True), make_image(rng), T0, contains_nudity=False
        )
        assert net.fetch(url).status is FetchStatus.DEFUNCT

    def test_dead_links_sampled(self, rng):
        net = SimulatedInternet(seed=1)
        service = self.make_service(dead_link_rate=1.0)
        url = net.host_on_service(service, make_image(rng), T0, contains_nudity=False)
        assert net.fetch(url).status is FetchStatus.NOT_FOUND

    def test_tos_takedown_only_for_nudity(self, rng):
        net = SimulatedInternet(seed=1)
        service = self.make_service(tos_takedown_rate=1.0)
        url_clean = net.host_on_service(service, make_image(rng, ImageKind.PROOF_SCREENSHOT), T0, False)
        url_nude = net.host_on_service(service, make_image(rng), T0, True)
        assert net.fetch(url_clean).ok
        assert net.fetch(url_nude).status is FetchStatus.REMOVED_TOS

    def test_registration_wall_applies_to_packs_only(self, rng):
        net = SimulatedInternet(seed=1)
        service = self.make_service(
            kind=ServiceKind.CLOUD_STORAGE, requires_registration=True
        )
        url_pack = net.host_on_service(service, make_pack(rng), T0, True)
        url_image = net.host_on_service(service, make_image(rng), T0, False)
        assert net.fetch(url_pack).status is FetchStatus.REGISTRATION_REQUIRED
        assert net.fetch(url_image).ok

    def test_unknown_url(self):
        net = SimulatedInternet()
        assert net.fetch("https://nowhere.com/x").status is FetchStatus.UNKNOWN_HOST

    def test_minted_urls_unique(self, rng):
        net = SimulatedInternet(seed=2)
        service = self.make_service()
        urls = {
            str(net.host_on_service(service, make_image(rng, image_id=i), T0, False))
            for i in range(200)
        }
        assert len(urls) == 200

    def test_origin_site_registry(self, rng):
        net = SimulatedInternet(seed=3)
        site = OriginSite("porn.example", "Pornography", "regular website", "Europe")
        url = net.host_on_origin(site, make_image(rng), T0)
        assert net.fetch(url).ok
        assert net.origin_site("porn.example") == site
        assert net.region_of("porn.example") == "Europe"
        assert net.site_type_of("porn.example") == "regular website"

    def test_conflicting_origin_registration(self):
        net = SimulatedInternet()
        net.register_origin_site(OriginSite("d.com", "Blogs", "blog", "UK"))
        with pytest.raises(ValueError):
            net.register_origin_site(OriginSite("d.com", "News", "blog", "UK"))

    def test_site_type_for_hosting_services(self):
        net = SimulatedInternet()
        assert net.site_type_of("imgur.com") == "image sharing site"
        assert net.site_type_of("mediafire.com") == "cloud storage"
        assert net.site_type_of("unknown.tld") is None


class TestArchive:
    def test_record_and_query(self):
        archive = WaybackArchive(seed=1, coverage=1.0)
        archive.record("https://a.com/x", T0)
        assert archive.earliest_snapshot("https://a.com/x") == T0
        assert archive.seen_before("https://a.com/x", T0 + timedelta(days=1))
        assert not archive.seen_before("https://a.com/x", T0)

    def test_unarchived_url(self):
        archive = WaybackArchive()
        assert archive.earliest_snapshot("https://a.com/x") is None
        assert not archive.seen_before("https://a.com/x", T0)

    def test_zero_coverage_never_archives(self):
        archive = WaybackArchive(seed=1, coverage=0.0)
        for i in range(50):
            assert archive.observe_publication(f"https://a.com/{i}", T0) is None

    def test_full_coverage_always_archives(self):
        archive = WaybackArchive(seed=1, coverage=1.0, max_lag_days=10)
        snapshot = archive.observe_publication("https://a.com/x", T0)
        assert snapshot is not None
        assert T0 <= snapshot <= T0 + timedelta(days=10)

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            WaybackArchive(coverage=1.5)

    def test_snapshots_sorted(self):
        archive = WaybackArchive()
        archive.record("u", T0 + timedelta(days=5))
        archive.record("u", T0)
        assert archive.snapshots("u") == [T0, T0 + timedelta(days=5)]


class TestCrawler:
    def make_net_with(self, rng, resources):
        net = SimulatedInternet(seed=4)
        service = HostingService(
            "ok", "ok.com", ServiceKind.IMAGE_SHARING, 1.0, 0.0, 0.0
        )
        links = []
        for kind, resource in resources:
            url = net.host_on_service(service, resource, T0, contains_nudity=False)
            links.append(LinkRecord(url=url, thread_id=1, post_id=2,
                                    author_id=3, posted_at=T0, link_kind=kind))
        return net, links

    def test_downloads_images(self, rng):
        net, links = self.make_net_with(rng, [("preview", make_image(rng))])
        result = Crawler(net).crawl(links)
        assert len(result.preview_images) == 1
        assert result.stats.n_ok == 1

    def test_unpacks_packs(self, rng):
        pack = make_pack(rng, n=5)
        net, links = self.make_net_with(rng, [("pack", pack)])
        result = Crawler(net).crawl(links)
        assert len(result.packs) == 1
        assert len(result.pack_images) == 5

    def test_same_pack_two_links_counted_once(self, rng):
        pack = make_pack(rng, n=3)
        net, links = self.make_net_with(rng, [("pack", pack), ("pack", pack)])
        result = Crawler(net).crawl(links)
        assert len(result.packs) == 1
        assert len(result.pack_images) == 6  # both links deliver files

    def test_dedup_by_digest(self, rng):
        pack = make_pack(rng, n=3)
        net, links = self.make_net_with(rng, [("pack", pack), ("pack", pack)])
        result = Crawler(net).crawl(links)
        assert result.n_unique_files == 3

    def test_dead_links_counted(self, rng):
        net = SimulatedInternet(seed=5)
        dead = HostingService("dead", "dead.com", ServiceKind.IMAGE_SHARING, 1.0, 1.0, 0.0)
        url = net.host_on_service(dead, make_image(rng), T0, False)
        result = Crawler(net).crawl([LinkRecord(url=url)])
        assert result.stats.count(FetchStatus.NOT_FOUND) == 1
        assert result.preview_images == []

    def test_duplicate_histogram(self, rng):
        pack = make_pack(rng, n=2)
        net, links = self.make_net_with(rng, [("pack", pack), ("pack", pack)])
        histogram = Crawler(net).crawl(links).duplicate_histogram()
        assert sorted(histogram.values()) == [2, 2]

    def test_content_digest_stable_and_distinct(self, rng):
        a = make_image(rng, image_id=1)
        b = make_image(rng, image_id=2)
        assert content_digest(a) == content_digest(a)
        assert content_digest(a) != content_digest(b)

    def test_stats_by_domain(self, rng):
        net, links = self.make_net_with(rng, [("preview", make_image(rng))])
        stats = Crawler(net).crawl(links).stats
        assert stats.by_domain == {"ok.com": 1}
