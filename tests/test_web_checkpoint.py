"""Checkpointed-resume tests: a resumed crawl is byte-identical.

The core property (ISSUE acceptance): for *every* fault profile, killing
a crawl at an arbitrary point and resuming from the checkpoint yields a
:class:`CrawlResult` whose digest and stats exactly match an
uninterrupted crawl.
"""

from datetime import datetime

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media import ImageKind, Pack, SyntheticImage, sample_latent
from repro.web import (
    CrawlCheckpoint,
    Crawler,
    FaultInjector,
    FetchStatus,
    HostingService,
    LinkRecord,
    RetryPolicy,
    ServiceKind,
    SimulatedInternet,
    Url,
    fault_profile,
    link_key,
)

T0 = datetime(2014, 5, 1)
PROFILES = ["none", "flaky", "hostile", "rate_limited"]


def _make_image(rng, image_id):
    return SyntheticImage(
        image_id, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1)
    )


def build_net_and_links():
    """A mixed-fate internet: alive previews, packs, dead links, walls,
    unknown hosts, and duplicate link occurrences."""
    rng = np.random.default_rng(99)
    net = SimulatedInternet(seed=6)
    alive = HostingService("ok", "ok.com", ServiceKind.IMAGE_SHARING, 1.0, 0.0, 0.0)
    dead = HostingService("dead", "dead.com", ServiceKind.IMAGE_SHARING, 1.0, 1.0, 0.0)
    walled = HostingService(
        "wall", "wall.com", ServiceKind.CLOUD_STORAGE, 1.0, 0.0, 0.0,
        requires_registration=True,
    )
    links = []
    for i in range(14):
        url = net.host_on_service(alive, _make_image(rng, 100 + i), T0, False)
        links.append(LinkRecord(url=url, link_kind="preview"))
    for p in range(3):
        images = [_make_image(rng, 500 + 10 * p + j) for j in range(4)]
        pack = Pack(pack_id=p + 1, model_id=1, images=images)
        url = net.host_on_service(alive, pack, T0, False)
        links.append(LinkRecord(url=url, link_kind="pack"))
        if p == 0:  # duplicate pack link (same URL twice)
            links.append(LinkRecord(url=url, link_kind="pack"))
    for i in range(4):
        url = net.host_on_service(dead, _make_image(rng, 700 + i), T0, False)
        links.append(LinkRecord(url=url))
    url = net.host_on_service(
        walled, Pack(pack_id=9, model_id=1, images=[_make_image(rng, 800)]), T0, True
    )
    links.append(LinkRecord(url=url, link_kind="pack"))
    links.append(LinkRecord(url=Url("nowhere.example", "/gone")))
    # duplicate preview occurrence
    links.append(links[0])
    return net, links


@pytest.fixture(scope="module")
def arena():
    net, links = build_net_and_links()
    return net, links


def crawler_for(net):
    return Crawler(
        net,
        retry_policy=RetryPolicy(max_attempts=4),
        breaker_threshold=4,
        breaker_cooldown=5.0,
    )


def set_profile(net, profile):
    if profile == "none":
        net.set_fault_injector(None)
    else:
        net.set_fault_injector(FaultInjector(fault_profile(profile), seed=21))


class TestResumeEquivalence:
    @pytest.mark.parametrize("profile", PROFILES)
    @given(split=st.integers(min_value=0, max_value=25))
    @settings(max_examples=12, deadline=None)
    def test_kill_and_resume_matches_uninterrupted(self, arena, profile, split):
        """Property: resume after an interruption at any point is exact."""
        net, links = arena
        split = min(split, len(links))
        set_profile(net, profile)
        try:
            baseline = crawler_for(net).crawl(links)

            ckpt = CrawlCheckpoint()
            crawler_for(net).crawl(links[:split], checkpoint=ckpt)  # "killed" here
            resumed = crawler_for(net).crawl(links, checkpoint=ckpt)

            assert resumed.digest() == baseline.digest()
            assert resumed.stats == baseline.stats
            assert len(resumed.attempt_logs) == len(baseline.attempt_logs)
        finally:
            net.set_fault_injector(None)

    @pytest.mark.parametrize("profile", PROFILES)
    def test_file_backed_resume(self, arena, tmp_path, profile):
        net, links = arena
        set_profile(net, profile)
        try:
            baseline = crawler_for(net).crawl(links)
            path = tmp_path / f"crawl-{profile}.json"

            crawler_for(net).crawl(links[:9], checkpoint=str(path), checkpoint_every=2)
            assert path.exists()
            resumed = crawler_for(net).crawl(links, checkpoint=str(path))
            assert resumed.digest() == baseline.digest()
            assert resumed.stats == baseline.stats
        finally:
            net.set_fault_injector(None)

    def test_resume_is_idempotent(self, arena):
        """Crawling a completed checkpoint again changes nothing."""
        net, links = arena
        set_profile(net, "flaky")
        try:
            ckpt = CrawlCheckpoint()
            first = crawler_for(net).crawl(links, checkpoint=ckpt)
            second = crawler_for(net).crawl(links, checkpoint=ckpt)
            third = crawler_for(net).crawl(links, checkpoint=ckpt)
            assert first.digest() == second.digest() == third.digest()
            assert first.stats == second.stats == third.stats
            assert ckpt.n_completed == len(links)
        finally:
            net.set_fault_injector(None)

    def test_duplicate_occurrences_counted_separately(self, arena):
        net, links = arena
        set_profile(net, "none")
        ckpt = CrawlCheckpoint()
        result = crawler_for(net).crawl(links, checkpoint=ckpt)
        assert result.stats.n_links == len(links)
        # the duplicated URLs appear under two distinct occurrence keys
        url0 = str(links[0].url)
        assert ckpt.is_complete(link_key(url0, 0))
        assert ckpt.is_complete(link_key(url0, 1))


class TestCheckpointMechanics:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        ckpt = CrawlCheckpoint(path=path)
        ckpt.mark(link_key("https://a.com/x", 0), "ok", 2, log={"url": "https://a.com/x"})
        ckpt.stats = {"n_links": 1}
        ckpt.clock = 3.5
        ckpt.budget_spent = 2
        ckpt.save()

        loaded = CrawlCheckpoint.load(path)
        assert loaded.n_completed == 1
        assert loaded.outcome(link_key("https://a.com/x", 0))["attempt"] == 2
        assert loaded.clock == 3.5
        assert loaded.budget_spent == 2
        assert loaded.stats == {"n_links": 1}

    def test_load_missing_file_starts_fresh(self, tmp_path):
        ckpt = CrawlCheckpoint.load(tmp_path / "absent.json")
        assert ckpt.n_completed == 0
        assert ckpt.stats is None

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 999}', encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            CrawlCheckpoint.load(path)

    def test_in_memory_save_is_noop(self):
        assert CrawlCheckpoint().save() is None

    def test_link_key_distinguishes_occurrences(self):
        assert link_key("https://a.com/x", 0) != link_key("https://a.com/x", 1)
        assert link_key("https://a.com/x", 0) == link_key("https://a.com/x", 0)


class TestGracefulInterruption:
    """SIGINT/SIGTERM mid-crawl: checkpoint, close clean, resume exact.

    The chaos monkey delivers a *real* signal to our own process at the
    ``crawl.checkpoint.saved`` kill site; :func:`graceful_signals` turns
    it into a typed :class:`SignalInterrupt`, the crawler's
    ``BaseException`` boundary flushes the checkpoint on the way out,
    and the resumed crawl must be byte-identical to an uninterrupted
    one (DESIGN.md §13).
    """

    def _interrupt_crawl(self, net, links, path, action):
        from repro.chaos import (
            ChaosMonkey,
            SignalInterrupt,
            graceful_signals,
            install,
            uninstall,
        )

        set_profile(net, "flaky")
        try:
            baseline = crawler_for(net).crawl(links)
            install(ChaosMonkey("crawl.checkpoint.saved", action=action, hit=2))
            with pytest.raises(SignalInterrupt) as excinfo:
                with graceful_signals():
                    crawler_for(net).crawl(
                        links, checkpoint=str(path), checkpoint_every=2
                    )
            uninstall()

            # The mid-flight state was checkpointed and is resumable.
            assert path.exists()
            partial = CrawlCheckpoint.load(path)
            assert 0 < partial.n_completed < len(links)

            resumed = crawler_for(net).crawl(links, checkpoint=str(path))
            assert resumed.digest() == baseline.digest()
            assert resumed.stats == baseline.stats
            return excinfo.value
        finally:
            uninstall()
            net.set_fault_injector(None)

    def test_sigint_checkpoints_and_resumes_exactly(self, arena, tmp_path):
        net, links = arena
        exc = self._interrupt_crawl(net, links, tmp_path / "int.json", "sigint")
        assert exc.exit_code == 130  # 128 + SIGINT

    def test_sigterm_checkpoints_and_resumes_exactly(self, arena, tmp_path):
        net, links = arena
        exc = self._interrupt_crawl(net, links, tmp_path / "term.json", "sigterm")
        assert exc.exit_code == 143  # 128 + SIGTERM

    def test_graceful_signals_restores_handlers(self):
        import signal as _signal

        from repro.chaos import graceful_signals

        before = _signal.getsignal(_signal.SIGINT)
        with graceful_signals():
            assert _signal.getsignal(_signal.SIGINT) is not before
        assert _signal.getsignal(_signal.SIGINT) is before

    def test_signal_interrupt_is_not_an_exception_subclass(self):
        from repro.chaos import SignalInterrupt

        # BaseException, so lenient stage boundaries can't absorb it —
        # an interrupted run stops, it doesn't half-continue.
        assert not issubclass(SignalInterrupt, Exception)
