"""Tests for the transient-fault model (repro.web.faults)."""

from datetime import datetime

import pytest

import repro.web.internet as internet_mod
from repro.media import ImageKind, SyntheticImage, sample_latent
from repro.web import (
    FAULT_PROFILES,
    Crawler,
    DomainFaultSpec,
    FaultInjector,
    FaultProfile,
    FetchStatus,
    HostingService,
    LinkRecord,
    ScriptedFaultInjector,
    ServiceKind,
    SimulatedInternet,
    TRANSIENT_STATUSES,
    fault_profile,
    stable_uniform,
)

T0 = datetime(2014, 5, 1)


def make_image(rng, image_id=1):
    return SyntheticImage(
        image_id, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1)
    )


def reliable_service(**kwargs):
    defaults = dict(
        name="svc", domain="svc.com", kind=ServiceKind.IMAGE_SHARING,
        weight=1.0, dead_link_rate=0.0, tos_takedown_rate=0.0,
    )
    defaults.update(kwargs)
    return HostingService(**defaults)


class TestStableUniform:
    def test_deterministic_and_order_independent(self):
        a = stable_uniform(7, "https://a.com/x", "0")
        stable_uniform(7, "something", "else")  # interleaved draws change nothing
        assert stable_uniform(7, "https://a.com/x", "0") == a

    def test_range_and_spread(self):
        values = [stable_uniform(1, f"u{i}") for i in range(500)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.4 < sum(values) / len(values) < 0.6  # roughly uniform

    def test_seed_sensitivity(self):
        assert stable_uniform(1, "x") != stable_uniform(2, "x")


class TestProfiles:
    def test_registry_lookup(self):
        assert fault_profile("flaky").name == "flaky"
        assert fault_profile("none").default.total_rate == 0.0

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            fault_profile("nope")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DomainFaultSpec(timeout_rate=1.5)
        with pytest.raises(ValueError):
            DomainFaultSpec(timeout_rate=0.5, rate_limit_rate=0.6)
        with pytest.raises(ValueError):
            DomainFaultSpec(retry_after=-1.0)

    def test_overrides(self):
        profile = FaultProfile(
            "custom",
            DomainFaultSpec(),
            overrides={"bad.com": DomainFaultSpec(timeout_rate=1.0)},
        )
        assert profile.spec_for("bad.com").timeout_rate == 1.0
        assert profile.spec_for("good.com").total_rate == 0.0

    def test_all_builtin_profiles_valid(self):
        for name, profile in FAULT_PROFILES.items():
            assert profile.name == name
            assert 0.0 <= profile.default.total_rate <= 1.0


class TestFaultInjector:
    def test_deterministic_per_url_attempt(self):
        injector_a = FaultInjector(fault_profile("hostile"), seed=9)
        injector_b = FaultInjector(fault_profile("hostile"), seed=9)
        urls = [f"https://svc.com/{i}" for i in range(300)]
        outcomes_a = [injector_a.sample("svc.com", u, 0) for u in urls]
        outcomes_b = [injector_b.sample("svc.com", u, 0) for u in reversed(urls)]
        assert outcomes_a == list(reversed(outcomes_b))

    def test_rates_approximately_honored(self):
        profile = fault_profile("flaky")
        injector = FaultInjector(profile, seed=3)
        n = 4000
        faults = sum(
            injector.sample("svc.com", f"https://svc.com/{i}", 0) is not None
            for i in range(n)
        )
        expected = profile.default.total_rate
        assert abs(faults / n - expected) < 0.02
        assert injector.n_injected == faults

    def test_transient_statuses_only(self):
        injector = FaultInjector(fault_profile("hostile"), seed=0)
        for i in range(500):
            fault = injector.sample("svc.com", f"https://svc.com/{i}", 0)
            if fault is not None:
                assert fault.status in TRANSIENT_STATUSES

    def test_rate_limit_carries_retry_after(self):
        spec = DomainFaultSpec(rate_limit_rate=1.0, retry_after=7.5)
        injector = FaultInjector(FaultProfile("rl", spec), seed=0)
        fault = injector.sample("svc.com", "https://svc.com/x", 0)
        assert fault.status is FetchStatus.RATE_LIMITED
        assert fault.retry_after == 7.5

    def test_none_profile_injects_nothing(self):
        injector = FaultInjector(fault_profile("none"), seed=0)
        assert all(
            injector.sample("a.com", f"https://a.com/{i}", 0) is None
            for i in range(100)
        )


class TestScriptedInjector:
    def test_fails_first_n_attempts(self):
        injector = ScriptedFaultInjector({"https://a.com/x": 2})
        assert injector.sample("a.com", "https://a.com/x", 0) is not None
        assert injector.sample("a.com", "https://a.com/x", 1) is not None
        assert injector.sample("a.com", "https://a.com/x", 2) is None

    def test_host_level_rule(self):
        injector = ScriptedFaultInjector(
            {"a.com": 1}, status=FetchStatus.SERVER_ERROR
        )
        fault = injector.sample("a.com", "https://a.com/anything", 0)
        assert fault.status is FetchStatus.SERVER_ERROR
        assert injector.sample("b.com", "https://b.com/x", 0) is None

    def test_rejects_permanent_status(self):
        with pytest.raises(ValueError):
            ScriptedFaultInjector({}, status=FetchStatus.NOT_FOUND)


class TestInternetFaultIntegration:
    def test_fetch_surfaces_transient_then_clears(self, rng):
        net = SimulatedInternet(seed=1)
        url = net.host_on_service(reliable_service(), make_image(rng), T0, False)
        net.set_fault_injector(ScriptedFaultInjector({str(url): 2}))
        assert net.fetch(url, attempt=0).status is FetchStatus.TIMEOUT
        assert net.fetch(url, attempt=1).status is FetchStatus.TIMEOUT
        result = net.fetch(url, attempt=2)
        assert result.ok and result.resource is not None

    def test_fault_hides_permanent_fate(self, rng):
        net = SimulatedInternet(seed=1)
        dead = reliable_service(dead_link_rate=1.0)
        url = net.host_on_service(dead, make_image(rng), T0, False)
        net.set_fault_injector(ScriptedFaultInjector({str(url): 1}))
        assert net.fetch(url, attempt=0).status is FetchStatus.TIMEOUT
        assert net.fetch(url, attempt=1).status is FetchStatus.NOT_FOUND

    def test_same_attempt_reproduces_outcome(self, rng):
        net = SimulatedInternet(seed=1)
        url = net.host_on_service(reliable_service(), make_image(rng), T0, False)
        net.set_fault_injector(FaultInjector(fault_profile("hostile"), seed=5))
        first = net.fetch(url, attempt=0).status
        for _ in range(3):
            assert net.fetch(url, attempt=0).status is first

    def test_no_injector_means_no_transients(self, rng):
        net = SimulatedInternet(seed=1)
        url = net.host_on_service(reliable_service(), make_image(rng), T0, False)
        assert net.fault_injector is None
        assert all(net.fetch(url, attempt=a).ok for a in range(5))


class TestSatelliteBugfixes:
    def test_fetch_unknown_string_url_parses_real_host(self):
        """Satellite: unknown string URLs must report their real host."""
        net = SimulatedInternet()
        result = net.fetch("https://nowhere.example/x")
        assert result.status is FetchStatus.UNKNOWN_HOST
        assert result.url.host == "nowhere.example"
        assert result.url.path == "/x"

    def test_unknown_string_url_reaches_crawl_stats(self):
        from repro.web import Url

        net = SimulatedInternet()
        link = LinkRecord(url=Url("nowhere.example", "/x"))
        stats = Crawler(net).crawl([link]).stats
        assert stats.by_domain == {"nowhere.example": 1}

    def test_fetch_unparseable_string_still_answers(self):
        net = SimulatedInternet()
        result = net.fetch("not a url at all")
        assert result.status is FetchStatus.UNKNOWN_HOST
        assert result.url.host == "unknown.invalid"

    def test_mint_url_exhaustion_raises(self, rng, monkeypatch):
        """Satellite: mint_url must terminate on namespace exhaustion."""
        monkeypatch.setattr(internet_mod, "_TOKEN_ALPHABET", "a")
        net = SimulatedInternet(seed=1)
        first = net.mint_url("tiny.com")  # only token "aaaaaaaa" exists
        net._hosted[str(first)] = object()
        with pytest.raises(RuntimeError, match="namespace exhausted"):
            net.mint_url("tiny.com")
