"""Tests for retry/backoff policy, circuit breakers, and the crawler wiring."""

from datetime import datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.media import ImageKind, SyntheticImage, sample_latent
from repro.web import (
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    Crawler,
    FaultInjector,
    FetchStatus,
    HostingService,
    LinkRecord,
    RetryPolicy,
    ScriptedFaultInjector,
    ServiceKind,
    SimulatedInternet,
    fault_profile,
)
from repro.web.crawler import CrawlStats

T0 = datetime(2014, 5, 1)


def make_image(rng, image_id=1):
    return SyntheticImage(
        image_id, sample_latent(rng, ImageKind.MODEL_NUDE, model_id=1)
    )


def reliable_net(rng, n_links=30, domain="svc.com"):
    """An internet hosting n always-alive images, plus their link records."""
    net = SimulatedInternet(seed=4)
    service = HostingService(
        "svc", domain, ServiceKind.IMAGE_SHARING, 1.0, 0.0, 0.0
    )
    links = []
    for i in range(n_links):
        url = net.host_on_service(service, make_image(rng, image_id=100 + i), T0, False)
        links.append(LinkRecord(url=url))
    return net, links


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(retry_budget=-1)

    @given(
        attempt=st.integers(min_value=0, max_value=12),
        u=st.floats(min_value=0.0, max_value=0.9999999),
    )
    @settings(max_examples=120, deadline=None)
    def test_full_jitter_bounds(self, attempt, u):
        """Satellite: backoff delay always within [0, min(cap, base*2^n))."""
        policy = RetryPolicy(base_delay=0.5, max_delay=30.0)
        delay = policy.backoff_delay(attempt, u)
        cap = min(30.0, 0.5 * (2.0 ** attempt))
        assert 0.0 <= delay <= cap
        if u > 0:
            assert delay == pytest.approx(u * cap)

    def test_cap_growth_and_ceiling(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=8.0)
        caps = [policy.backoff_delay(a, 0.999999) for a in range(8)]
        assert caps == sorted(caps)
        assert caps[-1] <= 8.0

    def test_u_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_delay(0, 1.0)


class TestCircuitBreaker:
    def test_state_transition_cycle(self):
        """Satellite: closed → open → half-open → closed / re-open."""
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0)
        assert breaker.state is BreakerState.CLOSED

        for t in range(3):
            assert breaker.allow(float(t))
            breaker.record_failure(float(t))
        assert breaker.state is BreakerState.OPEN
        assert breaker.n_opens == 1

        assert not breaker.allow(5.0)           # cooldown not elapsed
        assert breaker.allow(12.0)              # probe allowed
        assert breaker.state is BreakerState.HALF_OPEN

        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow(10.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure(10.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 10.0
        assert breaker.n_opens == 2

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED

    def test_serialization_round_trip(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        restored = CircuitBreaker.from_dict(breaker.to_dict())
        assert restored == breaker

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)


class TestBreakerBoard:
    def test_per_domain_isolation(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("a.com").record_failure(0.0)
        assert board.breaker("a.com").state is BreakerState.OPEN
        assert board.breaker("b.com").state is BreakerState.CLOSED
        assert board.n_open == 1
        assert board.total_opens == 1

    def test_snapshot_restore_round_trip(self):
        board = BreakerBoard(failure_threshold=2, cooldown=30.0)
        board.breaker("a.com").record_failure(1.0)
        board.breaker("b.com").record_failure(1.0)
        board.breaker("b.com").record_failure(2.0)
        restored = BreakerBoard.restore(board.snapshot())
        assert len(restored) == 2
        assert restored.breaker("b.com").state is BreakerState.OPEN
        assert restored.breaker("a.com").consecutive_failures == 1
        assert restored.failure_threshold == 2


class TestCrawlerRetries:
    def test_recovers_at_least_90pct_under_flaky(self, rng):
        """Acceptance: retries+breaker recover ≥90% of a zero-fault crawl."""
        net, links = reliable_net(rng, n_links=60)
        baseline = Crawler(net).crawl(links)
        net.set_fault_injector(FaultInjector(fault_profile("flaky"), seed=13))
        faulty = Crawler(net).crawl(links)
        assert faulty.stats.n_ok >= 0.9 * baseline.stats.n_ok
        assert faulty.stats.n_transient_faults > 0  # the profile did fire

    def test_scripted_recovery_after_retries(self, rng):
        net, links = reliable_net(rng, n_links=5)
        net.set_fault_injector(ScriptedFaultInjector({"svc.com": 2}))
        result = Crawler(net).crawl(links)
        assert result.stats.n_ok == 5
        assert result.stats.n_retries == 10  # 2 retries per link
        assert len(result.attempt_logs) == 5
        for log in result.attempt_logs:
            assert [a.attempt for a in log.attempts] == [0, 1, 2]
            assert log.final_status is FetchStatus.OK
            assert not log.gave_up

    def test_giveup_after_exhausted_attempts(self, rng):
        net, links = reliable_net(rng, n_links=3)
        net.set_fault_injector(
            ScriptedFaultInjector({"svc.com": 10**9}, status=FetchStatus.SERVER_ERROR)
        )
        policy = RetryPolicy(max_attempts=3)
        # Threshold high enough that the breaker never interferes here.
        result = Crawler(net, retry_policy=policy, breaker_threshold=100).crawl(links)
        assert result.stats.n_ok == 0
        assert result.stats.n_giveups == 3
        assert result.stats.count(FetchStatus.SERVER_ERROR) == 3
        assert all(log.gave_up for log in result.attempt_logs)

    def test_retry_budget_zero_disables_retries(self, rng):
        net, links = reliable_net(rng, n_links=5)
        net.set_fault_injector(ScriptedFaultInjector({"svc.com": 1}))
        policy = RetryPolicy(retry_budget=0)
        result = Crawler(net, retry_policy=policy, breaker_threshold=100).crawl(links)
        assert result.stats.n_retries == 0
        assert result.stats.n_ok == 0
        assert result.stats.n_giveups == 5

    def test_breaker_opens_and_skips_links(self, rng):
        net, links = reliable_net(rng, n_links=20)
        net.set_fault_injector(ScriptedFaultInjector({"svc.com": 10**9}))
        result = Crawler(
            net,
            retry_policy=RetryPolicy(max_attempts=2),
            breaker_threshold=3,
            breaker_cooldown=10**9,  # never recovers within this crawl
        ).crawl(links)
        assert result.stats.n_breaker_skips > 0
        assert result.stats.count(FetchStatus.SKIPPED_BREAKER_OPEN) == (
            result.stats.n_breaker_skips
        )
        skipped = [log for log in result.attempt_logs if log.breaker_skipped]
        assert len(skipped) == result.stats.n_breaker_skips

    def test_breaker_recovers_after_cooldown(self, rng):
        net, links = reliable_net(rng, n_links=40)
        # Fail every attempt for the first 8 links' URLs only.
        failures = {str(link.url): 10**9 for link in links[:8]}
        net.set_fault_injector(ScriptedFaultInjector(failures))
        result = Crawler(
            net,
            retry_policy=RetryPolicy(max_attempts=2, attempt_cost=1.0),
            breaker_threshold=3,
            breaker_cooldown=5.0,
        ).crawl(links)
        # The breaker opened on the early dead URLs but the clock advanced
        # past the cooldown, so later links succeeded.
        assert result.stats.n_ok > 0
        assert result.stats.n_ok >= len(links) - 8 - result.stats.n_breaker_skips

    def test_retry_after_honored_in_clock(self, rng):
        net, links = reliable_net(rng, n_links=1)
        net.set_fault_injector(
            ScriptedFaultInjector(
                {"svc.com": 1}, status=FetchStatus.RATE_LIMITED, retry_after=42.0
            )
        )
        result = Crawler(net).crawl(links)
        (log,) = result.attempt_logs
        assert log.attempts[0].status is FetchStatus.RATE_LIMITED
        assert log.attempts[0].delay == 42.0

    def test_default_crawl_unchanged_without_faults(self, rng):
        """No injector → no retries, no logs, same counters as before."""
        net, links = reliable_net(rng, n_links=10)
        result = Crawler(net).crawl(links)
        assert result.stats.n_retries == 0
        assert result.stats.n_giveups == 0
        assert result.stats.n_breaker_skips == 0
        assert result.stats.n_transient_faults == 0
        assert result.attempt_logs == []
        assert result.stats.n_ok == 10


class TestCrawlStats:
    def test_merge_sums_everything(self):
        a = CrawlStats(
            n_links=3,
            by_status={FetchStatus.OK: 2, FetchStatus.NOT_FOUND: 1},
            by_domain={"a.com": 3},
            n_retries=2,
            n_giveups=1,
            n_transient_faults=3,
        )
        b = CrawlStats(
            n_links=2,
            by_status={FetchStatus.OK: 1, FetchStatus.TIMEOUT: 1},
            by_domain={"a.com": 1, "b.com": 1},
            n_breaker_skips=1,
        )
        merged = a.merge(b)
        assert merged.n_links == 5
        assert merged.by_status[FetchStatus.OK] == 3
        assert merged.by_status[FetchStatus.NOT_FOUND] == 1
        assert merged.by_status[FetchStatus.TIMEOUT] == 1
        assert merged.by_domain == {"a.com": 4, "b.com": 1}
        assert merged.n_retries == 2
        assert merged.n_giveups == 1
        assert merged.n_breaker_skips == 1
        assert merged.n_transient_faults == 3
        # merge() does not mutate its operands
        assert a.n_links == 3 and b.n_links == 2

    def test_serialization_round_trip(self):
        stats = CrawlStats(
            n_links=4,
            by_status={FetchStatus.OK: 3, FetchStatus.RATE_LIMITED: 1},
            by_domain={"x.com": 4},
            n_retries=7,
            n_giveups=1,
            n_breaker_skips=2,
            n_transient_faults=9,
        )
        assert CrawlStats.from_dict(stats.to_dict()) == stats
